"""Unit tests for the morsel-parallel execution tier.

Covers the building blocks (radix partitioning, shared-memory column
shipping), the fused scan operator's stats parity, probe-strategy
selection (index / serial / fan-out), engine-name validation, and the
parallel engine's agreement with the row oracle under every strategy.
"""

from array import array

import pytest

from repro.analysis import build_reference_plan
from repro.errors import (
    DeadlineExceededError,
    ExecutionError,
    InvalidEngineError,
)
from repro.execution import (
    ColumnShipment,
    Executor,
    FusedScanFilterOp,
    ParallelHashJoinOp,
    encode_int64,
    radix_partition,
    read_shipment,
    validate_engine,
)
from repro.execution import parallel as parallel_module
from repro.execution.metrics import ExecutionMetrics
from repro.resilience import Deadline
from repro.catalog import TableSchema
from repro.optimizer import ScanPlan
from repro.sql import Op, Projection, join_predicate, local_predicate, parse_query
from repro.sql.predicates import ColumnRef
from repro.storage import Database
from repro.workloads import ColumnSpec, TableSpec, build_database


def make_database():
    db = Database()
    db.load_columns(
        TableSchema.of("R", "x", "y"), {"x": [1, 2, 3, 4], "y": [10, 20, 30, 40]}
    )
    db.load_columns(
        TableSchema.of("S", "x", "z"), {"x": [2, 3, 3, 9], "z": [5, 6, 7, 8]}
    )
    return db


def scan_plan(relation, predicates=()):
    return ScanPlan(
        relation=relation,
        base_table=relation,
        local_predicates=tuple(predicates),
        estimated_rows=0.0,
        estimated_cost=0.0,
        row_width=8,
    )


# ---------------------------------------------------------------------------
# radix_partition
# ---------------------------------------------------------------------------


class TestRadixPartition:
    def test_partitions_by_low_bits(self):
        keys = [0, 1, 2, 3, 16, 17]
        buckets = radix_partition(keys, 4)
        assert len(buckets) == 16
        assert list(buckets[0]) == [0, 4]  # values 0 and 16
        assert list(buckets[1]) == [1, 5]  # values 1 and 17
        assert list(buckets[2]) == [2]
        assert list(buckets[3]) == [3]

    def test_every_row_lands_exactly_once(self):
        keys = list(range(-50, 50))
        buckets = radix_partition(keys, 3)
        seen = sorted(i for bucket in buckets for i in bucket)
        assert seen == list(range(100))

    def test_negative_keys_partition_arithmetically(self):
        # Python's & on negative ints is modulo 2**bits: -1 & 3 == 3.
        buckets = radix_partition([-1, -4], 2)
        assert list(buckets[3]) == [0]
        assert list(buckets[0]) == [1]

    def test_zero_bits_is_one_partition(self):
        buckets = radix_partition([5, 6, 7], 0)
        assert len(buckets) == 1
        assert list(buckets[0]) == [0, 1, 2]

    def test_negative_bits_rejected(self):
        with pytest.raises(ExecutionError, match="non-negative"):
            radix_partition([1], -1)


# ---------------------------------------------------------------------------
# Shared-memory shipment lifecycle
# ---------------------------------------------------------------------------


class TestColumnShipment:
    def test_round_trip(self):
        shipment = ColumnShipment.create(
            {
                "build": array("q", [1, -2, 3]),
                "probe": array("q", range(100)),
            }
        )
        try:
            sections = read_shipment(shipment.descriptor)
        finally:
            shipment.destroy()
        assert list(sections["build"]) == [1, -2, 3]
        assert list(sections["probe"]) == list(range(100))

    def test_descriptor_is_picklable_metadata_only(self):
        shipment = ColumnShipment.create({"build": array("q", [7])})
        try:
            name, sections = shipment.descriptor
            assert isinstance(name, str)
            assert sections == (("build", 0, 1),)
            assert shipment.size_bytes == 8
        finally:
            shipment.destroy()

    def test_destroy_is_idempotent(self):
        shipment = ColumnShipment.create({"build": array("q", [1])})
        shipment.destroy()
        shipment.destroy()  # second call must be a no-op, not an error

    def test_empty_sections_still_create_a_segment(self):
        shipment = ColumnShipment.create({"build": array("q")})
        try:
            sections = read_shipment(shipment.descriptor)
        finally:
            shipment.destroy()
        assert list(sections["build"]) == []

    def test_non_int64_section_rejected(self):
        with pytest.raises(ExecutionError, match="int64"):
            ColumnShipment.create({"build": array("d", [1.0])})
        with pytest.raises(ExecutionError, match="int64"):
            ColumnShipment.create({"build": [1, 2, 3]})


class TestEncodeInt64:
    def test_int_values_pack(self):
        packed = encode_int64([1, 2, -3])
        assert packed is not None
        assert list(packed) == [1, 2, -3]

    def test_bools_coerce_like_equality(self):
        assert list(encode_int64([True, False])) == [1, 0]

    @pytest.mark.parametrize(
        "values",
        [[1.5], ["a"], [None], [2**63]],
        ids=["float", "string", "none", "overflow"],
    )
    def test_unpackable_values_return_none(self, values):
        assert encode_int64(values) is None


# ---------------------------------------------------------------------------
# Engine-name validation
# ---------------------------------------------------------------------------


class TestEngineValidation:
    def test_validate_engine_accepts_all_engines(self):
        for engine in ("row", "columnar", "parallel"):
            assert validate_engine(engine) == engine

    def test_unknown_engine_raises_structured_error(self):
        with pytest.raises(InvalidEngineError) as excinfo:
            validate_engine("vectorized")
        error = excinfo.value
        assert error.engine == "vectorized"
        assert error.valid_engines == ("row", "columnar", "parallel")
        assert "vectorized" in str(error)
        assert "columnar" in str(error)

    def test_invalid_engine_is_an_execution_error(self):
        assert issubclass(InvalidEngineError, ExecutionError)

    def test_executor_rejects_unknown_engine(self):
        with pytest.raises(InvalidEngineError):
            Executor(make_database(), engine="gpu")

    def test_evaluate_workloads_rejects_unknown_engine_eagerly(self):
        from repro.analysis import evaluate_workloads

        with pytest.raises(InvalidEngineError):
            evaluate_workloads([], engine="nope")

    def test_morsel_workers_must_be_positive(self):
        with pytest.raises(ExecutionError, match="morsel_workers"):
            Executor(make_database(), engine="parallel", morsel_workers=0)
        metrics = ExecutionMetrics()
        db = make_database()
        left = FusedScanFilterOp("R", db.table("R"), metrics)
        right = FusedScanFilterOp("S", db.table("S"), metrics)
        with pytest.raises(ExecutionError, match="morsel_workers"):
            ParallelHashJoinOp(
                left,
                right,
                [join_predicate("R", "x", "S", "x")],
                metrics,
                morsel_workers=0,
            )


# ---------------------------------------------------------------------------
# FusedScanFilterOp
# ---------------------------------------------------------------------------


class TestFusedScanFilter:
    def _stats(self, metrics):
        return [
            (s.label, s.rows_in, s.rows_out, s.comparisons, s.pages_read)
            for s in metrics.operators
        ]

    def test_stats_match_unfused_columnar_engine(self):
        db = make_database()
        plan = scan_plan(
            "R", predicates=[local_predicate("R", "x", Op.GT, 1)]
        )
        columnar = Executor(db, engine="columnar").execute(plan)
        fused = Executor(db, engine="parallel", morsel_workers=1).execute(plan)
        assert sorted(fused.rows) == sorted(columnar.rows)
        assert self._stats(fused.metrics) == self._stats(columnar.metrics)

    def test_small_morsels_do_not_change_results(self):
        db = make_database()
        plan = scan_plan(
            "R", predicates=[local_predicate("R", "x", Op.GT, 1)]
        )
        baseline = Executor(db, engine="parallel", morsel_workers=1).execute(plan)
        tiny = Executor(
            db, engine="parallel", morsel_workers=1, morsel_rows=1
        ).execute(plan)
        assert tiny.rows == baseline.rows
        assert self._stats(tiny.metrics) == self._stats(baseline.metrics)

    def test_bare_scan_hands_out_probe_index(self):
        db = make_database()
        op = FusedScanFilterOp("R", db.table("R"), ExecutionMetrics())
        index = op.probe_index(0)
        assert index is not None
        assert index[2] == (1,)  # R.x == 2 lives in row 1

    def test_filtered_scan_refuses_probe_index(self):
        db = make_database()
        op = FusedScanFilterOp(
            "R",
            db.table("R"),
            ExecutionMetrics(),
            predicates=[local_predicate("R", "x", Op.GT, 1)],
        )
        assert op.probe_index(0) is None

    def test_projected_scan_refuses_probe_index(self):
        db = make_database()
        op = FusedScanFilterOp(
            "R",
            db.table("R"),
            ExecutionMetrics(),
            project_columns=[ColumnRef("R", "x")],
        )
        assert op.probe_index(0) is None

    def test_single_table_projection_pushdown(self):
        db = make_database()
        result = Executor(db, engine="parallel", morsel_workers=1).execute(
            scan_plan("R", predicates=[local_predicate("R", "x", Op.GT, 2)]),
            Projection(columns=(ColumnRef("R", "y"),)),
        )
        assert sorted(result.rows) == [(30,), (40,)]
        labels = [s.label for s in result.metrics.operators]
        assert labels == ["scan(R)", "filter", "project"]


# ---------------------------------------------------------------------------
# Probe-strategy selection and agreement
# ---------------------------------------------------------------------------


def _skew_join_database(n_probe=6000, n_build=40, distinct=30):
    specs = (
        TableSpec("B", n_build, {"k": ColumnSpec(distinct=distinct)}),
        TableSpec("P", n_probe, {"k": ColumnSpec(distinct=distinct)}),
    )
    return build_database(specs, seed=11)


def _join_query():
    return parse_query(
        "SELECT COUNT(*) FROM B, P WHERE B.k = P.k",
        schemas={"B": ("k",), "P": ("k",)},
    )


def _agree(db, query, **executor_kwargs):
    plan = build_reference_plan(query, db)
    oracle = Executor(db, engine="row").execute(plan)
    parallel = Executor(db, engine="parallel", **executor_kwargs).execute(plan)
    assert sorted(parallel.rows) == sorted(oracle.rows)
    assert [
        (s.label, s.rows_in, s.rows_out, s.comparisons)
        for s in parallel.metrics.operators
    ] == [
        (s.label, s.rows_in, s.rows_out, s.comparisons)
        for s in oracle.metrics.operators
    ]
    return parallel


class TestProbeStrategies:
    def test_index_path_matches_oracle(self, monkeypatch):
        # Probe 6000 rows against 30 distinct build keys: well past the
        # INDEX_MIN_PROBE_ROWS / INDEX_FANIN thresholds.
        monkeypatch.setattr(parallel_module, "INDEX_MIN_PROBE_ROWS", 100)
        _agree(_skew_join_database(), _join_query(), morsel_workers=1)

    def test_serial_path_matches_oracle(self, monkeypatch):
        # Disable the index path so the adaptive serial kernel runs.
        monkeypatch.setattr(parallel_module, "INDEX_MIN_PROBE_ROWS", 10**9)
        _agree(
            _skew_join_database(),
            _join_query(),
            morsel_workers=1,
            morsel_rows=512,
        )

    def test_serial_path_high_hit_rate_disables_prefilter(self, monkeypatch):
        # Every probe key matches -> first morsel's hit rate is 1.0, which
        # flips the kernel to the classic loop; results must not change.
        monkeypatch.setattr(parallel_module, "INDEX_MIN_PROBE_ROWS", 10**9)
        specs = (
            TableSpec("B", 20, {"k": ColumnSpec(distinct=2)}),
            TableSpec("P", 5000, {"k": ColumnSpec(distinct=2)}),
        )
        db = build_database(specs, seed=5)
        _agree(db, _join_query(), morsel_workers=1, morsel_rows=256)

    def test_fanout_path_matches_oracle(self, monkeypatch):
        monkeypatch.setattr(parallel_module, "INDEX_MIN_PROBE_ROWS", 10**9)
        monkeypatch.setattr(parallel_module, "FANOUT_MIN_PROBE_ROWS", 1)
        _agree(
            _skew_join_database(n_probe=3000),
            _join_query(),
            morsel_workers=2,
            morsel_rows=512,
        )

    def test_small_probes_never_fan_out(self):
        db = make_database()
        metrics = ExecutionMetrics()
        left = FusedScanFilterOp("R", db.table("R"), metrics)
        right = FusedScanFilterOp("S", db.table("S"), metrics)
        op = ParallelHashJoinOp(
            left,
            right,
            [join_predicate("R", "x", "S", "x")],
            metrics,
            morsel_workers=8,
        )
        assert not op._fanout_eligible(4)
        assert not op._fanout_eligible(parallel_module.FANOUT_MIN_PROBE_ROWS - 1)

    def test_single_worker_never_fans_out(self):
        db = make_database()
        metrics = ExecutionMetrics()
        left = FusedScanFilterOp("R", db.table("R"), metrics)
        right = FusedScanFilterOp("S", db.table("S"), metrics)
        op = ParallelHashJoinOp(
            left,
            right,
            [join_predicate("R", "x", "S", "x")],
            metrics,
            morsel_workers=1,
        )
        assert not op._fanout_eligible(10**9)


class TestFallbacks:
    def test_multi_key_join_matches_oracle(self):
        specs = (
            TableSpec(
                "A", 300, {"k": ColumnSpec(distinct=10), "j": ColumnSpec(distinct=5)}
            ),
            TableSpec(
                "B", 200, {"k": ColumnSpec(distinct=10), "j": ColumnSpec(distinct=5)}
            ),
        )
        db = build_database(specs, seed=9)
        query = parse_query(
            "SELECT COUNT(*) FROM A, B WHERE A.k = B.k AND A.j = B.j",
            schemas={"A": ("k", "j"), "B": ("k", "j")},
        )
        _agree(db, query, morsel_workers=2)

    def test_non_equi_join_falls_back_to_row_bridge(self):
        specs = (
            TableSpec("A", 50, {"x": ColumnSpec(distinct=25)}),
            TableSpec("B", 40, {"y": ColumnSpec(distinct=20)}),
        )
        db = build_database(specs, seed=2)
        query = parse_query(
            "SELECT COUNT(*) FROM A, B WHERE A.x < B.y",
            schemas={"A": ("x",), "B": ("y",)},
        )
        _agree(db, query, morsel_workers=2)

    def test_count_matches_execute(self):
        db = _skew_join_database(n_probe=2000)
        plan = build_reference_plan(_join_query(), db)
        executor = Executor(db, engine="parallel", morsel_workers=1)
        assert executor.count(plan).count == len(executor.execute(plan).rows)


# ---------------------------------------------------------------------------
# Deadline cooperation
# ---------------------------------------------------------------------------


class TestDeadlines:
    def test_expired_deadline_aborts_fused_scan(self):
        db = _skew_join_database()
        clock = iter([0.0] + [100.0] * 1000)
        deadline = Deadline(1.0, clock=lambda: next(clock), tick_interval=1)
        executor = Executor(
            db, engine="parallel", morsel_workers=1, deadline=deadline
        )
        plan = build_reference_plan(_join_query(), db)
        with pytest.raises(DeadlineExceededError):
            executor.execute(plan)
