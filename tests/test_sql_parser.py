"""Parser tests: grammar coverage, resolution, normalization, errors."""

import pytest

from repro.errors import ParseError, ResolutionError
from repro.sql import ColumnRef, Op, parse_predicate, parse_query
from repro.sql.predicates import Literal


class TestSelectList:
    def test_count_star(self):
        query = parse_query("SELECT COUNT(*) FROM R WHERE R.x = 1")
        assert query.projection.count_star

    def test_star(self):
        query = parse_query("SELECT * FROM R")
        assert not query.projection.count_star
        assert query.projection.columns == ()

    def test_explicit_columns(self):
        query = parse_query("SELECT R.a, S.b FROM R, S")
        assert query.projection.columns == (ColumnRef("R", "a"), ColumnRef("S", "b"))

    def test_count_requires_parens_and_star(self):
        with pytest.raises(ParseError):
            parse_query("SELECT COUNT(x) FROM R")


class TestFromClause:
    def test_multiple_tables(self):
        query = parse_query("SELECT * FROM A, B, C")
        assert query.tables == ("A", "B", "C")

    def test_alias_with_as(self):
        query = parse_query("SELECT * FROM Orders AS o WHERE o.x = 1")
        assert query.tables == ("o",)
        assert query.base_table("o") == "Orders"

    def test_alias_without_as(self):
        query = parse_query("SELECT * FROM Orders o WHERE o.x = 1")
        assert query.base_table("o") == "Orders"

    def test_self_join_via_aliases(self):
        query = parse_query("SELECT * FROM R a, R b WHERE a.x = b.x")
        assert query.tables == ("a", "b")
        assert query.base_table("a") == "R" and query.base_table("b") == "R"
        assert query.predicates[0].is_join

    def test_duplicate_relation_name_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM R, R")


class TestWhereClause:
    def test_no_where(self):
        assert parse_query("SELECT * FROM R").predicates == ()

    def test_join_and_local_predicates(self):
        query = parse_query("SELECT * FROM R, S WHERE R.x = S.y AND R.x > 5")
        assert len(query.predicates) == 2
        assert query.predicates[0].is_join
        assert query.predicates[1].kind.value == "constant-local"

    def test_parenthesized_comparison(self):
        query = parse_query("SELECT * FROM R WHERE (R.x > 500) AND (R.x < 900)")
        assert len(query.predicates) == 2

    def test_duplicate_predicates_removed(self):
        # Algorithm ELS step 1's example: (R.x > 500) AND (R.x > 500).
        query = parse_query("SELECT * FROM R WHERE R.x > 500 AND R.x > 500")
        assert len(query.predicates) == 1

    def test_reversed_duplicate_removed(self):
        query = parse_query("SELECT * FROM R, S WHERE R.x = S.y AND S.y = R.x")
        assert len(query.predicates) == 1

    def test_literal_on_left_normalized(self):
        query = parse_query("SELECT * FROM R WHERE 100 > R.x")
        pred = query.predicates[0]
        assert pred.left == ColumnRef("R", "x")
        assert pred.op is Op.LT
        assert pred.constant == 100

    def test_string_literal(self):
        query = parse_query("SELECT * FROM R WHERE R.name = 'alice'")
        assert query.predicates[0].constant == "alice"

    def test_float_literal(self):
        query = parse_query("SELECT * FROM R WHERE R.x >= 2.5")
        assert query.predicates[0].constant == 2.5

    def test_constant_only_comparison_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM R WHERE 1 = 1")

    def test_not_equal_both_spellings(self):
        q1 = parse_query("SELECT * FROM R WHERE R.x <> 3")
        q2 = parse_query("SELECT * FROM R WHERE R.x != 3")
        assert q1.predicates == q2.predicates


class TestResolution:
    SCHEMAS = {"S": ["s"], "M": ["m"], "B": ["b"], "G": ["g"]}

    def test_unqualified_columns_resolved(self):
        query = parse_query(
            "SELECT COUNT(*) FROM S, M WHERE s = m AND s < 100", schemas=self.SCHEMAS
        )
        join = query.predicates[0]
        assert {c.table for c in join.columns} == {"S", "M"}

    def test_paper_experiment_query_parses(self):
        query = parse_query(
            "SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND s < 100",
            schemas=self.SCHEMAS,
        )
        assert len(query.predicates) == 4
        assert len(query.join_predicates) == 3

    def test_unqualified_without_schemas_raises(self):
        with pytest.raises(ResolutionError):
            parse_query("SELECT * FROM S WHERE s < 100")

    def test_ambiguous_column_raises(self):
        with pytest.raises(ResolutionError):
            parse_query(
                "SELECT * FROM A, B WHERE c = 1", schemas={"A": ["c"], "B": ["c"]}
            )

    def test_unknown_column_raises(self):
        with pytest.raises(ResolutionError):
            parse_query("SELECT * FROM A WHERE zz = 1", schemas={"A": ["c"]})

    def test_resolution_through_alias(self):
        query = parse_query(
            "SELECT * FROM Orders o WHERE total > 5", schemas={"Orders": ["total"]}
        )
        assert query.predicates[0].left == ColumnRef("o", "total")

    def test_qualified_reference_to_unknown_table_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM R WHERE Z.x = 1")


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "FROM R",
            "SELECT * R",
            "SELECT * FROM R WHERE",
            "SELECT * FROM R WHERE R.x =",
            "SELECT * FROM R WHERE R.x 5",
            "SELECT * FROM",
            "SELECT * FROM R extra junk",
        ],
    )
    def test_malformed_raises_parse_error(self, sql):
        with pytest.raises(ParseError):
            parse_query(sql)


class TestParsePredicate:
    def test_single_predicate(self):
        pred = parse_predicate("R.x = S.y", ["R", "S"])
        assert pred.is_join

    def test_with_resolution(self):
        pred = parse_predicate("x < 5", ["R"], schemas={"R": ["x"]})
        assert pred.left == ColumnRef("R", "x")

    def test_roundtrip_str(self):
        query = parse_query("SELECT COUNT(*) FROM R, S WHERE R.x = S.y AND R.x > 5")
        text = str(query)
        assert "COUNT(*)" in text and "R.x = S.y" in text and "R.x > 5" in text
