"""BETWEEN desugaring tests, plus a parser round-trip property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.sql import ColumnRef, Op, parse_query


class TestBetween:
    def test_desugars_to_range_pair(self):
        query = parse_query("SELECT * FROM R WHERE R.x BETWEEN 10 AND 20")
        assert len(query.predicates) == 2
        low, high = query.predicates
        assert low.op is Op.GE and low.constant == 10
        assert high.op is Op.LE and high.constant == 20

    def test_composes_with_conjunction(self):
        query = parse_query(
            "SELECT * FROM R, S WHERE R.x = S.y AND R.x BETWEEN 1 AND 5 AND S.y > 0"
        )
        assert len(query.predicates) == 4

    def test_parenthesized(self):
        query = parse_query("SELECT * FROM R WHERE (R.x BETWEEN 1 AND 5)")
        assert len(query.predicates) == 2

    def test_unqualified_resolution(self):
        query = parse_query(
            "SELECT * FROM R WHERE x BETWEEN 1 AND 5", schemas={"R": ["x"]}
        )
        assert query.predicates[0].left == ColumnRef("R", "x")

    def test_literal_left_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM R WHERE 5 BETWEEN 1 AND R.x")

    def test_column_bound_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM R WHERE R.x BETWEEN R.y AND 5")

    def test_missing_and_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM R WHERE R.x BETWEEN 1 5")

    def test_estimation_uses_tightest_bounds(self):
        """BETWEEN feeds straight into the [16] range-pair combination."""
        from repro.catalog import Catalog
        from repro.core import ELS, JoinSizeEstimator

        catalog = Catalog.from_stats({"R": (1000, {"x": 1000})})
        query = parse_query("SELECT * FROM R WHERE R.x BETWEEN 101 AND 300")
        estimator = JoinSizeEstimator(query, catalog, ELS)
        assert estimator.base_rows("R") == pytest.approx(200, rel=0.03)


_identifiers = st.sampled_from(["alpha", "beta", "gamma", "delta"])
_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])


@st.composite
def conjunctive_query_text(draw):
    """Random qualified conjunctive queries over two fixed tables."""
    n_predicates = draw(st.integers(min_value=0, max_value=4))
    parts = []
    for _ in range(n_predicates):
        left = f"{draw(st.sampled_from(['R', 'S']))}.{draw(_identifiers)}"
        op = draw(_ops)
        if draw(st.booleans()):
            right = f"{draw(st.sampled_from(['R', 'S']))}.{draw(_identifiers)}"
            if right == left:
                right = str(draw(st.integers(-100, 100)))
        else:
            right = str(draw(st.integers(-100, 100)))
        parts.append(f"{left} {op} {right}")
    sql = "SELECT COUNT(*) FROM R, S"
    if parts:
        sql += " WHERE " + " AND ".join(parts)
    return sql


class TestParserRoundTrip:
    @given(sql=conjunctive_query_text())
    @settings(max_examples=100, deadline=None)
    def test_parse_render_parse_is_stable(self, sql):
        """parse(str(parse(q))) == parse(q) — rendering loses nothing."""
        first = parse_query(sql)
        second = parse_query(str(first))
        assert first.tables == second.tables
        assert first.predicates == second.predicates
        assert first.projection == second.projection
