"""Skew-aware join estimation tests (the Section 9 future-work extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import ColumnStats, build_mcv
from repro.core import ELS, JoinSizeEstimator
from repro.core.skew import (
    exact_join_size,
    frequency_join_selectivity,
    frequency_join_size,
)
from repro.errors import EstimationError


def stats_for(values, mcv_k=0):
    mcv = build_mcv(values, mcv_k) if mcv_k else None
    numeric = all(isinstance(v, (int, float)) for v in values)
    return ColumnStats(
        distinct=len(set(values)),
        low=min(values) if numeric and values else None,
        high=max(values) if numeric and values else None,
        mcv=mcv,
    )


class TestExactJoinSize:
    def test_matches_brute_force(self):
        left = {1: 3, 2: 1, 5: 2}
        right = {1: 2, 5: 4, 9: 1}
        brute = sum(
            left.get(v, 0) * right.get(v, 0) for v in set(left) | set(right)
        )
        assert exact_join_size(left, right) == brute == 14

    def test_disjoint_domains(self):
        assert exact_join_size({1: 5}, {2: 5}) == 0

    def test_empty_side(self):
        assert exact_join_size({}, {1: 10}) == 0

    @given(
        left=st.lists(st.integers(min_value=0, max_value=6), max_size=40),
        right=st.lists(st.integers(min_value=0, max_value=6), max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_identity_against_lists(self, left, right):
        left_freq = {v: left.count(v) for v in set(left)}
        right_freq = {v: right.count(v) for v in set(right)}
        brute = sum(left.count(v) * right.count(v) for v in set(left) | set(right))
        assert exact_join_size(left_freq, right_freq) == brute


class TestFrequencyJoinSize:
    def test_degenerates_to_equation_1_without_mcvs(self):
        left = stats_for(list(range(1, 101)))
        right = stats_for(list(range(1, 1001)))
        size = frequency_join_size(100, left, 1000, right)
        assert size == pytest.approx(100 * 1000 / 1000)

    def test_full_mcv_coverage_is_exact(self):
        """When the MCV lists cover every value, the estimate is exact."""
        left_values = [1] * 50 + [2] * 30 + [3] * 20
        right_values = [1] * 5 + [2] * 10 + [4] * 85
        left = stats_for(left_values, mcv_k=10)
        right = stats_for(right_values, mcv_k=10)
        size = frequency_join_size(100, left, 100, right)
        exact = 50 * 5 + 30 * 10
        assert size == pytest.approx(exact)

    def test_skewed_vs_uniform_assumption(self):
        """Zipf-ish data: Equation 1 badly underestimates the hot-value
        mass; the frequency estimate recovers it."""
        rng = np.random.default_rng(4)
        left_values = [1] * 900 + list(range(2, 102))
        right_values = [1] * 800 + list(range(2, 202))
        exact = exact_join_size(
            {v: left_values.count(v) for v in set(left_values)},
            {v: right_values.count(v) for v in set(right_values)},
        )
        uniform_estimate = len(left_values) * len(right_values) / 201
        left = stats_for(left_values, mcv_k=5)
        right = stats_for(right_values, mcv_k=5)
        frequency_estimate = frequency_join_size(
            len(left_values), left, len(right_values), right
        )
        assert abs(frequency_estimate - exact) < abs(uniform_estimate - exact) / 10

    def test_zero_rows(self):
        left = stats_for([1, 2], mcv_k=2)
        right = stats_for([1, 2], mcv_k=2)
        assert frequency_join_size(0, left, 10, right) == 0.0

    def test_negative_rows_rejected(self):
        left = stats_for([1])
        with pytest.raises(EstimationError):
            frequency_join_size(-1, left, 1, left)

    def test_mcv_counts_scaled_to_effective_rows(self):
        """After a 50% local selection, MCV frequencies halve."""
        values = [1] * 80 + [2] * 20
        stats = stats_for(values, mcv_k=2)
        other = stats_for(list(range(1, 11)))
        full = frequency_join_size(100, stats, 10, other)
        halved = frequency_join_size(50, stats, 10, other)
        assert halved == pytest.approx(full / 2)


class TestFrequencySelectivity:
    def test_bounded_by_one(self):
        values = [1] * 100
        stats = stats_for(values, mcv_k=1)
        assert frequency_join_selectivity(100, stats, 100, stats) == 1.0

    def test_zero_for_empty_side(self):
        stats = stats_for([1], mcv_k=1)
        assert frequency_join_selectivity(0, stats, 5, stats) == 0.0


class TestEstimatorIntegration:
    def build(self, mcv_k, histogram=None):
        """A 2-table join with one hot value on each side."""
        from repro.catalog import Catalog, HistogramKind, TableSchema, TableStats
        from repro.catalog.collector import collect_table_stats
        from repro.sql import Projection, Query, join_predicate
        from repro.storage import Table

        kind = histogram if histogram is not None else HistogramKind.EQUI_DEPTH
        left_values = [1] * 500 + list(range(2, 502))
        right_values = [1] * 300 + list(range(2, 702))
        catalog = Catalog()
        for name, values in (("L", left_values), ("R", right_values)):
            table = Table(TableSchema.of(name, "c"))
            table.extend([(v,) for v in values])
            catalog.register(
                table.schema, collect_table_stats(table, kind, mcv_k=mcv_k)
            )
        query = Query.build(
            ["L", "R"], [join_predicate("L", "c", "R", "c")], Projection(count_star=True)
        )
        truth = exact_join_size(
            {v: left_values.count(v) for v in set(left_values)},
            {v: right_values.count(v) for v in set(right_values)},
        )
        return catalog, query, truth

    def test_extension_beats_equation_2_on_hot_values(self):
        catalog, query, truth = self.build(mcv_k=5)
        plain = JoinSizeEstimator(query, catalog, ELS).estimate(["L", "R"])
        extended = JoinSizeEstimator(
            query, catalog, ELS.but(use_frequency_stats=True)
        ).estimate(["L", "R"])
        assert abs(extended - truth) < abs(plain - truth) / 10

    def test_extension_inert_without_distribution_stats(self):
        from repro.catalog import HistogramKind

        catalog, query, _ = self.build(mcv_k=0, histogram=HistogramKind.NONE)
        plain = JoinSizeEstimator(query, catalog, ELS).estimate(["L", "R"])
        extended = JoinSizeEstimator(
            query, catalog, ELS.but(use_frequency_stats=True)
        ).estimate(["L", "R"])
        assert plain == pytest.approx(extended)

    def test_extension_harmless_on_uniform_keys(self):
        from repro.core import SM
        from repro.workloads import smbg_catalog, smbg_query

        catalog = smbg_catalog(scale=0.1)
        query = smbg_query(threshold=10)
        plain = JoinSizeEstimator(query, catalog, ELS).estimate(["S", "M", "B", "G"])
        extended = JoinSizeEstimator(
            query, catalog, ELS.but(use_frequency_stats=True)
        ).estimate(["S", "M", "B", "G"])
        assert plain == pytest.approx(extended)
