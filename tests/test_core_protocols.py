"""Tests for the estimator protocol and registry (``repro.core.protocols``).

The registry is the pluggable seam the ROADMAP's estimator-zoo direction
hangs on: the paper's four algorithms must be constructible by name,
behave identically to their config-based construction, and reject both
name collisions and unknown names with structured errors.
"""

import pytest

from repro import Catalog, parse_query
from repro.core.config import ELS, SM, SRS, SSS
from repro.core.estimator import JoinSizeEstimator
from repro.core.protocols import (
    ELSEstimator,
    SMEstimator,
    SRSEstimator,
    SSSEstimator,
    estimator_names,
    make_estimator,
    register_estimator,
)
from repro.errors import EstimationError

CONFIGS = {"els": ELS, "sm": SM, "srs": SRS, "sss": SSS}


@pytest.fixture
def workload():
    catalog = Catalog.from_stats(
        {
            "R1": (100, {"x": 10}),
            "R2": (1000, {"y": 100}),
            "R3": (1000, {"z": 1000}),
        }
    )
    query = parse_query(
        "SELECT * FROM R1, R2, R3 WHERE R1.x = R2.y AND R2.y = R3.z"
    )
    return query, catalog


def test_registry_lists_the_papers_algorithms():
    assert estimator_names() == ["els", "sm", "srs", "sss"]


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_registered_estimator_matches_config_construction(name, workload):
    query, catalog = workload
    registered = make_estimator(name, query, catalog)
    reference = JoinSizeEstimator(query, catalog, CONFIGS[name])
    order = ["R2", "R3", "R1"]
    assert registered.estimate(order) == pytest.approx(
        reference.estimate(order)
    )


@pytest.mark.parametrize(
    "name,cls",
    [
        ("els", ELSEstimator),
        ("sm", SMEstimator),
        ("srs", SRSEstimator),
        ("sss", SSSEstimator),
    ],
)
def test_make_estimator_constructs_the_registered_class(name, cls, workload):
    query, catalog = workload
    assert type(make_estimator(name, query, catalog)) is cls


def test_apply_closure_is_forwarded(workload):
    query, catalog = workload
    estimator = make_estimator("els", query, catalog, apply_closure=False)
    assert isinstance(estimator, ELSEstimator)


def test_registered_classes_expose_the_protocol_surface(workload):
    query, catalog = workload
    for name in estimator_names():
        estimator = make_estimator(name, query, catalog)
        for method in ("estimate", "estimate_order", "closed_form", "base_rows"):
            assert callable(getattr(estimator, method)), (name, method)


def test_unknown_name_raises_with_the_known_list():
    with pytest.raises(EstimationError, match="els"):
        make_estimator("nope", None, None)


def test_duplicate_registration_is_rejected():
    decorator = register_estimator("els")
    with pytest.raises(EstimationError, match="duplicate"):
        decorator(JoinSizeEstimator)


def test_same_class_reregistration_is_idempotent():
    assert register_estimator("els")(ELSEstimator) is ELSEstimator
