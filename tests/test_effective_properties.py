"""Property tests for effective-statistics invariants (Sections 5-6).

Whatever the local predicates, effective statistics must stay physically
meaningful: row counts cannot grow or go negative, effective column
cardinalities cannot exceed their originals or the effective row count's
ceiling, and a group's effective cardinality cannot exceed its smallest
member.  Hypothesis sweeps statistics and predicate mixes.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.catalog import TableStats
from repro.core import ELS, EquivalenceClasses, compute_effective_table
from repro.sql import Op, column_equality, local_predicate


@st.composite
def table_with_predicates(draw):
    rows = draw(st.integers(min_value=1, max_value=10**6))
    n_columns = draw(st.integers(min_value=1, max_value=4))
    distincts = {
        f"c{i}": draw(st.integers(min_value=1, max_value=rows))
        for i in range(n_columns)
    }
    predicates = []
    for name, distinct in distincts.items():
        if draw(st.booleans()):
            op = draw(st.sampled_from([Op.EQ, Op.LT, Op.LE, Op.GT, Op.GE, Op.NE]))
            constant = draw(st.integers(min_value=-5, max_value=distinct + 5))
            predicates.append(local_predicate("R", name, op, constant))
    return rows, distincts, predicates


class TestSection5Invariants:
    @given(config=table_with_predicates())
    @settings(max_examples=120, deadline=None)
    def test_rows_bounded(self, config):
        rows, distincts, predicates = config
        stats = TableStats.simple(rows, distincts)
        equivalence = EquivalenceClasses.from_predicates(predicates)
        effective = compute_effective_table("R", stats, predicates, equivalence, ELS)
        assert 0.0 <= effective.rows <= rows + 1e-9
        assert 0.0 <= effective.rows_after_constants <= rows + 1e-9
        assert 0.0 <= effective.local_selectivity <= 1.0 + 1e-12

    @given(config=table_with_predicates())
    @settings(max_examples=120, deadline=None)
    def test_column_cardinalities_bounded(self, config):
        rows, distincts, predicates = config
        stats = TableStats.simple(rows, distincts)
        equivalence = EquivalenceClasses.from_predicates(predicates)
        effective = compute_effective_table("R", stats, predicates, equivalence, ELS)
        for name, original in distincts.items():
            d = effective.distinct(name)
            assert 0.0 <= d <= original + 1e-9
            # A column cannot retain more distinct values than rows remain
            # (ceil, since paper formulas round up).
            assert d <= math.ceil(effective.rows_after_constants) + 1e-9 or d <= 1.0

    @given(config=table_with_predicates())
    @settings(max_examples=60, deadline=None)
    def test_standard_config_never_touches_columns(self, config):
        from repro.core import SM

        rows, distincts, predicates = config
        stats = TableStats.simple(rows, distincts)
        equivalence = EquivalenceClasses.from_predicates(predicates)
        effective = compute_effective_table("R", stats, predicates, equivalence, SM)
        for name, original in distincts.items():
            assert effective.distinct(name) == float(original)


class TestSection6Invariants:
    @given(
        rows=st.integers(min_value=1, max_value=10**5),
        d_pairs=st.lists(
            st.integers(min_value=1, max_value=1000), min_size=2, max_size=4
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_group_invariants(self, rows, d_pairs):
        distincts = {
            f"g{i}": min(d, rows) for i, d in enumerate(d_pairs)
        }
        names = list(distincts)
        stats = TableStats.simple(rows, distincts)
        predicates = [
            column_equality("R", names[i], names[i + 1])
            for i in range(len(names) - 1)
        ]
        equivalence = EquivalenceClasses.from_predicates(predicates)
        effective = compute_effective_table("R", stats, predicates, equivalence, ELS)
        (group,) = effective.groups
        smallest = min(distincts.values())
        assert 0.0 <= group.distinct <= smallest
        assert effective.rows <= rows
        # Paper formula: rows divided by all ds except the smallest, ceiled.
        divisor = 1.0
        for d in sorted(distincts.values())[1:]:
            divisor *= d
        assert effective.rows == float(math.ceil(rows / divisor))

    @given(
        rows=st.integers(min_value=1, max_value=10**4),
        d1=st.integers(min_value=1, max_value=100),
        d2=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=80, deadline=None)
    def test_group_matches_two_column_formula(self, rows, d1, d2):
        d1, d2 = min(d1, rows), min(d2, rows)
        stats = TableStats.simple(rows, {"y": d1, "w": d2})
        predicate = column_equality("R", "y", "w")
        equivalence = EquivalenceClasses.from_predicates([predicate])
        effective = compute_effective_table(
            "R", stats, [predicate], equivalence, ELS
        )
        expected_rows = math.ceil(rows / max(d1, d2))
        assert effective.rows == float(expected_rows)
