"""Union-find equivalence class tests."""

from repro.core import EquivalenceClasses
from repro.sql import ColumnRef, Op, column_equality, join_predicate, local_predicate


def col(table, column):
    return ColumnRef(table, column)


class TestBasicUnionFind:
    def test_unseen_column_is_singleton(self):
        classes = EquivalenceClasses()
        assert classes.find(col("R", "x")) == col("R", "x")
        assert not classes.same(col("R", "x"), col("S", "y"))

    def test_union_merges(self):
        classes = EquivalenceClasses()
        classes.union(col("R", "x"), col("S", "y"))
        assert classes.same(col("R", "x"), col("S", "y"))

    def test_transitive_merging(self):
        classes = EquivalenceClasses()
        classes.union(col("R", "x"), col("S", "y"))
        classes.union(col("S", "y"), col("T", "z"))
        assert classes.same(col("R", "x"), col("T", "z"))

    def test_union_idempotent(self):
        classes = EquivalenceClasses()
        classes.union(col("R", "x"), col("S", "y"))
        classes.union(col("R", "x"), col("S", "y"))
        assert len(classes.members(col("R", "x"))) == 2

    def test_members(self):
        classes = EquivalenceClasses()
        classes.union(col("R", "x"), col("S", "y"))
        classes.add(col("T", "z"))
        assert classes.members(col("R", "x")) == frozenset({col("R", "x"), col("S", "y")})
        assert classes.members(col("T", "z")) == frozenset({col("T", "z")})

    def test_class_id_is_union_order_independent(self):
        a = EquivalenceClasses()
        a.union(col("R", "x"), col("S", "y"))
        a.union(col("S", "y"), col("T", "z"))
        b = EquivalenceClasses()
        b.union(col("T", "z"), col("S", "y"))
        b.union(col("S", "y"), col("R", "x"))
        assert a.class_id(col("T", "z")) == b.class_id(col("R", "x"))

    def test_len_counts_classes(self):
        classes = EquivalenceClasses()
        classes.union(col("R", "x"), col("S", "y"))
        classes.add(col("T", "z"))
        assert len(classes) == 2


class TestFromPredicates:
    def test_equality_join_predicates_merge(self):
        classes = EquivalenceClasses.from_predicates(
            [join_predicate("R", "x", "S", "y"), join_predicate("S", "y", "T", "z")]
        )
        assert classes.same(col("R", "x"), col("T", "z"))

    def test_local_column_equality_merges(self):
        classes = EquivalenceClasses.from_predicates([column_equality("R", "a", "b")])
        assert classes.same(col("R", "a"), col("R", "b"))

    def test_nonequality_join_does_not_merge(self):
        classes = EquivalenceClasses.from_predicates(
            [join_predicate("R", "x", "S", "y", Op.LT)]
        )
        assert not classes.same(col("R", "x"), col("S", "y"))
        # But the columns are registered.
        assert col("R", "x") in classes.columns()

    def test_constant_predicates_register_but_do_not_merge(self):
        classes = EquivalenceClasses.from_predicates(
            [local_predicate("R", "x", Op.LT, 5)]
        )
        assert classes.columns() == (col("R", "x"),)

    def test_example_1a_single_class(self):
        # J1: R1.x = R2.y, J2: R2.y = R3.z => x, y, z j-equivalent.
        classes = EquivalenceClasses.from_predicates(
            [join_predicate("R1", "x", "R2", "y"), join_predicate("R2", "y", "R3", "z")]
        )
        assert classes.same(col("R1", "x"), col("R3", "z"))
        assert len(classes.nontrivial_classes()) == 1


class TestClassEnumeration:
    def test_classes_deterministic_order(self):
        classes = EquivalenceClasses()
        classes.union(col("Z", "z"), col("Y", "y"))
        classes.union(col("A", "a"), col("B", "b"))
        groups = classes.classes()
        assert min(groups[0]) < min(groups[1])

    def test_nontrivial_excludes_singletons(self):
        classes = EquivalenceClasses()
        classes.union(col("R", "x"), col("S", "y"))
        classes.add(col("T", "z"))
        assert len(classes.classes()) == 2
        assert len(classes.nontrivial_classes()) == 1

    def test_single_table_groups_detects_section6_case(self):
        # (R1.x = R2.y) AND (R1.x = R2.w): columns y, w of R2 j-equivalent.
        classes = EquivalenceClasses.from_predicates(
            [
                join_predicate("R1", "x", "R2", "y"),
                join_predicate("R1", "x", "R2", "w"),
            ]
        )
        groups = classes.single_table_groups("R2")
        assert groups == (frozenset({col("R2", "y"), col("R2", "w")}),)
        assert classes.single_table_groups("R1") == ()

    def test_single_table_groups_three_columns(self):
        classes = EquivalenceClasses.from_predicates(
            [
                column_equality("R", "a", "b"),
                column_equality("R", "b", "c"),
            ]
        )
        (group,) = classes.single_table_groups("R")
        assert len(group) == 3

    def test_repr_lists_classes(self):
        classes = EquivalenceClasses()
        classes.union(col("R", "x"), col("S", "y"))
        assert "R.x" in repr(classes) and "S.y" in repr(classes)
