"""Query object tests: validation, normalization, accessors."""

import pytest

from repro.sql import (
    ColumnRef,
    Op,
    Projection,
    Query,
    column_equality,
    dedupe_predicates,
    join_predicate,
    local_predicate,
)


class TestProjection:
    def test_count_star_excludes_columns(self):
        with pytest.raises(ValueError):
            Projection(count_star=True, columns=(ColumnRef("R", "x"),))

    def test_str_forms(self):
        assert str(Projection(count_star=True)) == "COUNT(*)"
        assert str(Projection()) == "*"
        assert str(Projection(columns=(ColumnRef("R", "x"),))) == "R.x"


class TestDedupe:
    def test_preserves_first_seen_order(self):
        p1 = local_predicate("R", "x", Op.GT, 5)
        p2 = join_predicate("R", "x", "S", "y")
        result = dedupe_predicates([p1, p2, p1])
        assert result == (p1, p2)

    def test_canonicalizes_before_comparing(self):
        a = join_predicate("R", "x", "S", "y")
        b = join_predicate("S", "y", "R", "x")
        assert dedupe_predicates([a, b]) == (a,)

    def test_empty(self):
        assert dedupe_predicates([]) == ()


class TestQueryValidation:
    def test_duplicate_tables_rejected(self):
        with pytest.raises(ValueError):
            Query.build(["R", "R"], [])

    def test_predicate_outside_from_rejected(self):
        with pytest.raises(ValueError):
            Query.build(["R"], [join_predicate("R", "x", "S", "y")])

    def test_alias_defaults_to_identity(self):
        query = Query.build(["R"], [])
        assert query.base_table("R") == "R"

    def test_alias_map_respected(self):
        query = Query.build(["r"], [], aliases={"r": "Orders"})
        assert query.base_table("r") == "Orders"

    def test_alias_map_is_immutable(self):
        query = Query.build(["R"], [])
        with pytest.raises(TypeError):
            query.aliases["R"] = "X"  # type: ignore[index]


class TestQueryAccessors:
    def make_query(self):
        return Query.build(
            ["R", "S", "T"],
            [
                join_predicate("R", "x", "S", "y"),
                join_predicate("S", "y", "T", "z"),
                local_predicate("R", "x", Op.LT, 10),
                column_equality("S", "y", "w"),
            ],
        )

    def test_join_predicates(self):
        assert len(self.make_query().join_predicates) == 2

    def test_local_predicates(self):
        assert len(self.make_query().local_predicates) == 2

    def test_constant_predicates(self):
        preds = self.make_query().constant_predicates
        assert len(preds) == 1
        assert preds[0].constant == 10

    def test_column_local_predicates(self):
        preds = self.make_query().column_local_predicates
        assert len(preds) == 1
        assert preds[0].tables == frozenset({"S"})

    def test_predicates_on(self):
        query = self.make_query()
        assert len(query.predicates_on("R")) == 2
        assert len(query.predicates_on("S")) == 3
        assert len(query.predicates_on("T")) == 1

    def test_with_predicates_replaces_conjunction(self):
        query = self.make_query()
        rewritten = query.with_predicates([join_predicate("R", "x", "T", "z")])
        assert len(rewritten.predicates) == 1
        assert rewritten.tables == query.tables
        assert rewritten.projection == query.projection

    def test_with_predicates_keeps_aliases(self):
        query = Query.build(
            ["r"], [local_predicate("r", "x", Op.EQ, 1)], aliases={"r": "Orders"}
        )
        rewritten = query.with_predicates([])
        assert rewritten.base_table("r") == "Orders"

    def test_str_contains_where(self):
        text = str(self.make_query())
        assert text.startswith("SELECT * FROM R, S, T WHERE ")
