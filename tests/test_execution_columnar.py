"""Columnar engine unit tests: blocks, vectorized operators, and bridges."""

import pytest

from repro.errors import ExecutionError
from repro.execution import (
    BlockBridgeOp,
    ColumnarFilterOp,
    ColumnarHashJoinOp,
    ColumnarProjectOp,
    ColumnarTableScanOp,
    ExecutionMetrics,
    Executor,
    FilterOp,
    GatherBlock,
    HashJoinOp,
    Layout,
    MaterializedBlock,
    RowBridgeOp,
    TableScanOp,
    compile_block_predicate,
)
from repro.sql import ColumnRef, Op, column_equality, join_predicate, local_predicate


def layout(relation, *columns):
    return Layout([ColumnRef(relation, c) for c in columns])


def scan(relation, columns, data, metrics, pages=0.0):
    """A columnar scan from per-column value lists."""
    return ColumnarTableScanOp(relation, columns, data, metrics, pages)


class TestColumnBlocks:
    def test_materialized_block_round_trip(self):
        block = MaterializedBlock(layout("R", "x", "y"), [[1, 2, 3], [4, 5, 6]])
        assert block.num_rows == 3
        assert block.column(0) == [1, 2, 3]
        assert block.tuples() == ((1, 4), (2, 5), (3, 6))

    def test_materialized_block_arity_checked(self):
        with pytest.raises(ExecutionError):
            MaterializedBlock(layout("R", "x", "y"), [[1, 2]])

    def test_gather_block_selects_rows(self):
        base = MaterializedBlock(layout("R", "x", "y"), [[1, 2, 3], [4, 5, 6]])
        view = GatherBlock(base, [2, 0])
        assert view.num_rows == 2
        assert view.tuples() == ((3, 6), (1, 4))

    def test_gather_of_gather_composes(self):
        base = MaterializedBlock(layout("R", "x"), [[10, 20, 30, 40]])
        inner = GatherBlock(base, [3, 2, 1])
        outer = GatherBlock(inner, [0, 2])
        assert outer.tuples() == ((40,), (20,))

    def test_columns_cached_by_identity(self):
        base = MaterializedBlock(layout("R", "x"), [[1, 2, 3]])
        view = GatherBlock(base, [0, 2])
        assert view.column(0) is view.column(0)

    def test_tuples_cached(self):
        block = MaterializedBlock(layout("R", "x"), [[1, 2]])
        assert block.tuples() is block.tuples()

    def test_tuples_frozen(self):
        """The cached materialization is a tuple, so no caller can corrupt
        the copy shared with every later ``tuples()`` call."""
        block = MaterializedBlock(layout("R", "x"), [[1, 2]])
        rows = block.tuples()
        assert isinstance(rows, tuple)
        assert list(block.tuples()) == [(1,), (2,)]


class TestVectorPredicates:
    def test_constant_predicate_full_scan(self):
        block = MaterializedBlock(layout("R", "x"), [[5, 1, 7, 3]])
        check = compile_block_predicate(
            local_predicate("R", "x", Op.LT, 4), block.layout
        )
        assert check(block, None) == [1, 3]

    def test_constant_predicate_narrows_candidates(self):
        block = MaterializedBlock(layout("R", "x"), [[5, 1, 7, 3]])
        check = compile_block_predicate(
            local_predicate("R", "x", Op.GT, 2), block.layout
        )
        assert check(block, [1, 3]) == [3]

    def test_column_column_predicate(self):
        block = MaterializedBlock(layout("R", "x", "y"), [[1, 2, 3], [1, 5, 3]])
        check = compile_block_predicate(column_equality("R", "x", "y"), block.layout)
        assert check(block, None) == [0, 2]
        assert check(block, [2]) == [2]

    def test_unknown_column_raises(self):
        with pytest.raises(ExecutionError):
            compile_block_predicate(
                local_predicate("S", "z", Op.LT, 1), layout("R", "x")
            )


class TestColumnarScanAndFilter:
    def test_scan_emits_block_and_charges_once(self):
        metrics = ExecutionMetrics()
        op = scan("R", ["x"], [[1, 2, 3]], metrics, pages=5.0)
        first = op.block()
        second = op.block()
        assert first is second
        assert op.stats.rows_out == 3
        assert metrics.total_pages_read == 5.0

    def test_filter_matches_row_engine_counters(self):
        predicates = [local_predicate("R", "x", Op.LT, 5)]
        row_metrics = ExecutionMetrics()
        row_op = FilterOp(
            TableScanOp("R", ["x"], [(i,) for i in range(10)], row_metrics),
            predicates,
            row_metrics,
        )
        col_metrics = ExecutionMetrics()
        col_op = ColumnarFilterOp(
            scan("R", ["x"], [list(range(10))], col_metrics), predicates, col_metrics
        )
        assert list(row_op.rows()) == list(col_op.rows())
        row_stats = [(s.rows_in, s.rows_out, s.comparisons) for s in row_metrics.operators]
        col_stats = [(s.rows_in, s.rows_out, s.comparisons) for s in col_metrics.operators]
        assert row_stats == col_stats

    def test_filter_without_predicates_is_identity(self):
        metrics = ExecutionMetrics()
        op = ColumnarFilterOp(scan("R", ["x"], [[1, 2]], metrics), [], metrics)
        assert list(op.rows()) == [(1,), (2,)]
        assert op.stats.comparisons == 2  # rows * max(1, 0 predicates)

    def test_project_reorders_columns(self):
        metrics = ExecutionMetrics()
        op = ColumnarProjectOp(
            scan("R", ["x", "y"], [[1, 2], [3, 4]], metrics),
            [ColumnRef("R", "y"), ColumnRef("R", "x")],
            metrics,
        )
        assert list(op.rows()) == [(3, 1), (4, 2)]
        assert op.layout.columns == (ColumnRef("R", "y"), ColumnRef("R", "x"))


class TestColumnarHashJoin:
    def _join_both_engines(self, left_values, right_values):
        predicates = [join_predicate("L", "k", "R", "k")]
        row_metrics = ExecutionMetrics()
        row_join = HashJoinOp(
            TableScanOp("L", ["k"], [(v,) for v in left_values], row_metrics),
            TableScanOp("R", ["k"], [(v,) for v in right_values], row_metrics),
            predicates,
            row_metrics,
        )
        col_metrics = ExecutionMetrics()
        col_join = ColumnarHashJoinOp(
            scan("L", ["k"], [list(left_values)], col_metrics),
            scan("R", ["k"], [list(right_values)], col_metrics),
            predicates,
            col_metrics,
        )
        return row_join, row_metrics, col_join, col_metrics

    @pytest.mark.parametrize(
        "left,right",
        [
            ([1, 2, 2, 3], [2, 2, 3, 4]),
            ([1, 2, 3], [4, 5]),  # empty result
            ([], [1, 2]),  # empty probe side
            ([1, 2], []),  # empty build side
            (list(range(20)), [5]),  # build side smaller than probe side
            ([5], list(range(20))),  # probe side smaller than build side
        ],
    )
    def test_matches_row_engine(self, left, right):
        row_join, row_metrics, col_join, col_metrics = self._join_both_engines(
            left, right
        )
        assert sorted(row_join.rows()) == sorted(col_join.rows())
        row_stats = [
            (s.label, s.rows_in, s.rows_out, s.comparisons, s.pages_read)
            for s in row_metrics.operators
        ]
        col_stats = [
            (s.label, s.rows_in, s.rows_out, s.comparisons, s.pages_read)
            for s in col_metrics.operators
        ]
        assert row_stats == col_stats

    def test_multi_key_join(self):
        predicates = [
            join_predicate("L", "a", "R", "a"),
            join_predicate("L", "b", "R", "b"),
        ]
        metrics = ExecutionMetrics()
        op = ColumnarHashJoinOp(
            scan("L", ["a", "b"], [[1, 1, 2], [1, 2, 1]], metrics),
            scan("R", ["a", "b"], [[1, 2], [2, 1]], metrics),
            predicates,
            metrics,
        )
        assert sorted(op.rows()) == [(1, 2, 1, 2), (2, 1, 2, 1)]

    def test_requires_equality_key(self):
        metrics = ExecutionMetrics()
        with pytest.raises(ExecutionError):
            ColumnarHashJoinOp(
                scan("L", ["k"], [[1]], metrics),
                scan("R", ["k"], [[1]], metrics),
                [],
                metrics,
            )

    def test_rejects_residual_predicates(self):
        metrics = ExecutionMetrics()
        with pytest.raises(ExecutionError):
            ColumnarHashJoinOp(
                scan("L", ["k", "v"], [[1], [2]], metrics),
                scan("R", ["k", "v"], [[1], [2]], metrics),
                [
                    join_predicate("L", "k", "R", "k"),
                    join_predicate("L", "v", "R", "v", Op.LT),
                ],
                metrics,
            )


class TestBridges:
    def test_row_bridge_is_invisible_in_metrics(self):
        metrics = ExecutionMetrics()
        columnar = scan("R", ["x"], [[1, 2]], metrics)
        bridge = RowBridgeOp(columnar)
        assert list(bridge.rows()) == [(1,), (2,)]
        assert [s.label for s in metrics.operators] == ["scan(R)"]

    def test_block_bridge_transposes_rows(self):
        metrics = ExecutionMetrics()
        row_op = TableScanOp("R", ["x", "y"], [(1, 2), (3, 4)], metrics)
        bridge = BlockBridgeOp(row_op)
        assert bridge.block().column(1) == [2, 4]
        assert [s.label for s in metrics.operators] == ["scan(R)"]

    def test_block_bridge_empty_input(self):
        metrics = ExecutionMetrics()
        row_op = TableScanOp("R", ["x"], [], metrics)
        bridge = BlockBridgeOp(row_op)
        assert bridge.block().num_rows == 0
        assert list(bridge.rows()) == []


class TestExecutorEngineSelection:
    def test_unknown_engine_rejected(self):
        from repro.storage.database import Database

        with pytest.raises(ExecutionError):
            Executor(Database(), engine="gpu")

    def test_engine_property(self):
        from repro.storage.database import Database

        assert Executor(Database(), engine="columnar").engine == "columnar"
        assert Executor(Database()).engine == "row"
