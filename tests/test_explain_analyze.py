"""EXPLAIN ANALYZE tests: node-by-node estimate vs actual alignment."""

import pytest

from repro.analysis.explain_analyze import explain_analyze, render_explain_analyze
from repro.core import ELS, SM
from repro.optimizer import Optimizer
from repro.workloads import load_smbg_database, smbg_query


@pytest.fixture(scope="module")
def setup():
    database = load_smbg_database(scale=0.05, seed=3)
    query = smbg_query(threshold=10)
    return database, query


class TestExplainAnalyze:
    def test_every_node_compared(self, setup):
        database, query = setup
        result = Optimizer(database.catalog).optimize(query, ELS)
        comparisons, run = explain_analyze(result.plan, database)
        # 4 scans + 3 joins.
        assert len(comparisons) == 7
        assert run.count == 9

    def test_els_nodes_accurate(self, setup):
        database, query = setup
        result = Optimizer(database.catalog).optimize(query, ELS)
        comparisons, _ = explain_analyze(result.plan, database)
        for node in comparisons:
            assert node.q_error < 1.6, node.label

    def test_sm_join_nodes_misestimate(self, setup):
        """Rule M's per-node q-errors blow up exactly at the joins where
        redundant selectivities pile on."""
        database, query = setup
        result = Optimizer(database.catalog).optimize(query, SM)
        comparisons, _ = explain_analyze(result.plan, database)
        join_errors = [c.q_error for c in comparisons if "join" in c.label]
        assert max(join_errors) > 100

    def test_scan_nodes_reflect_filters(self, setup):
        database, query = setup
        result = Optimizer(database.catalog).optimize(query, ELS)
        comparisons, _ = explain_analyze(result.plan, database)
        scans = [c for c in comparisons if c.label.startswith("scan")]
        assert len(scans) == 4
        for scan in scans:
            assert scan.actual_rows == 9  # all tables filtered to < 10

    def test_bushy_plan_supported(self, setup):
        database, query = setup
        result = Optimizer(database.catalog, enumerator="dp-bushy").optimize(
            query, ELS
        )
        comparisons, _ = explain_analyze(result.plan, database)
        assert len(comparisons) == 7

    def test_render_contains_all_nodes(self, setup):
        database, query = setup
        result = Optimizer(database.catalog).optimize(query, ELS)
        comparisons, _ = explain_analyze(result.plan, database)
        text = render_explain_analyze(comparisons)
        assert text.count("scan(") == 4
        assert "q-error" in text
