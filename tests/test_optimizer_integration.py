"""Optimizer facade tests on the paper's Section 8 setup."""

import pytest

from repro.core import ELS, SM, SSS
from repro.errors import OptimizationError
from repro.optimizer import JoinMethod, Optimizer
from repro.workloads import smbg_catalog, smbg_query


class TestOptimizeSMBG:
    def setup_method(self):
        self.catalog = smbg_catalog()
        self.query = smbg_query()
        self.optimizer = Optimizer(self.catalog)

    def test_els_estimates_correct_sizes(self):
        result = self.optimizer.optimize(self.query, ELS)
        for size in result.intermediate_sizes:
            assert size == pytest.approx(99.0, rel=0.02)

    def test_sm_no_ptc_joins_small_tables_first(self):
        """Without PTC the chain shape forces S/M to the front and G to the
        back (the paper's first experiment row, S >< M >< B >< G; our cost
        model ties S-outer with M-outer for the first sort-merge, so only
        the pair order is asserted)."""
        result = self.optimizer.optimize(self.query, SM, apply_closure=False)
        assert set(result.join_order[:2]) == {"S", "M"}
        assert result.join_order[2:] == ("B", "G")

    def test_sm_with_ptc_underestimates(self):
        result = self.optimizer.optimize(self.query, SM)
        assert result.intermediate_sizes[-1] < 1e-10

    def test_sss_with_ptc_underestimates_less(self):
        sm = self.optimizer.optimize(self.query, SM)
        sss = self.optimizer.optimize(self.query, SSS)
        assert sss.intermediate_sizes[-1] > sm.intermediate_sizes[-1]

    def test_ptc_pushes_local_predicates_everywhere(self):
        result = self.optimizer.optimize(self.query, ELS)
        plan = result.plan
        scans = []
        node = plan
        while hasattr(node, "left"):
            scans.append(node.right)
            node = node.left
        scans.append(node)
        assert all(scan.local_predicates for scan in scans)

    def test_no_ptc_only_s_filtered(self):
        result = self.optimizer.optimize(self.query, SM, apply_closure=False)
        plan = result.plan
        filtered = set()
        node = plan
        while hasattr(node, "left"):
            if node.right.local_predicates:
                filtered.add(node.right.relation)
            node = node.left
        if node.local_predicates:
            filtered.add(node.relation)
        assert filtered == {"S"}

    def test_result_accessors(self):
        result = self.optimizer.optimize(self.query, ELS)
        assert result.estimated_cost > 0
        assert result.estimated_rows == pytest.approx(99.0, rel=0.02)
        assert len(result.join_order) == 4
        assert "Join" in result.explain()

    def test_estimator_exposed(self):
        result = self.optimizer.optimize(self.query, ELS)
        assert len(result.estimator.query.join_predicates) == 6  # closed

    def test_cost_lower_with_ptc(self):
        """Early selection must make the chosen plan cheaper."""
        with_ptc = self.optimizer.optimize(self.query, ELS)
        without = self.optimizer.optimize(self.query, SM, apply_closure=False)
        assert with_ptc.estimated_cost < without.estimated_cost


class TestOptimizerConfiguration:
    def test_unknown_enumerator_rejected(self):
        with pytest.raises(OptimizationError):
            Optimizer(smbg_catalog(), enumerator="exhaustive-bogo")

    def test_greedy_enumerator_works(self):
        optimizer = Optimizer(smbg_catalog(), enumerator="greedy")
        result = optimizer.optimize(smbg_query(), ELS)
        assert len(result.join_order) == 4

    def test_hash_join_repertoire(self):
        optimizer = Optimizer(
            smbg_catalog(),
            methods=(JoinMethod.NESTED_LOOPS, JoinMethod.SORT_MERGE, JoinMethod.HASH),
        )
        result = optimizer.optimize(smbg_query(), ELS)
        assert result.plan.tables == frozenset({"S", "M", "B", "G"})

    def test_cost_model_accessible(self):
        optimizer = Optimizer(smbg_catalog())
        assert optimizer.cost_model.page_size == 4096
