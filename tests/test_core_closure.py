"""Transitive closure tests: each of the paper's five rules, fixpoint, dedup."""

import pytest

from repro.core.closure import ClosureRule, close_query, transitive_closure
from repro.sql import (
    ColumnRef,
    Op,
    column_equality,
    join_predicate,
    local_predicate,
    parse_query,
)
from repro.sql.predicates import ComparisonPredicate, Literal


class TestRuleA:
    """(R1.x = R2.y) AND (R2.y = R3.z) => (R1.x = R3.z)."""

    def test_join_join_to_join(self):
        result = transitive_closure(
            (
                join_predicate("R1", "x", "R2", "y"),
                join_predicate("R2", "y", "R3", "z"),
            )
        )
        implied = result.implied_by_rule(ClosureRule.JOIN_JOIN_TO_JOIN)
        assert join_predicate("R1", "x", "R3", "z") in implied

    def test_chain_of_four_closes_completely(self):
        result = transitive_closure(
            tuple(
                join_predicate(f"T{i}", "c", f"T{i+1}", "c") for i in range(1, 4)
            )
        )
        # 4 tables in one class -> C(4,2) = 6 pairwise join predicates.
        joins = [p for p in result.predicates if p.is_join]
        assert len(joins) == 6


class TestRuleB:
    """(R1.x = R2.y) AND (R1.x = R2.w) => (R2.y = R2.w)."""

    def test_join_join_to_local(self):
        result = transitive_closure(
            (
                join_predicate("R1", "x", "R2", "y"),
                join_predicate("R1", "x", "R2", "w"),
            )
        )
        implied = result.implied_by_rule(ClosureRule.JOIN_JOIN_TO_LOCAL)
        assert column_equality("R2", "y", "w") in implied


class TestRuleC:
    """(R1.x = R1.y) AND (R1.y = R1.z) => (R1.x = R1.z)."""

    def test_local_local_to_local(self):
        result = transitive_closure(
            (column_equality("R1", "x", "y"), column_equality("R1", "y", "z"))
        )
        implied = result.implied_by_rule(ClosureRule.LOCAL_LOCAL_TO_LOCAL)
        assert column_equality("R1", "x", "z") in implied


class TestRuleD:
    """(R1.x = R2.y) AND (R1.x = R1.v) => (R2.y = R1.v)."""

    def test_join_local_to_join(self):
        result = transitive_closure(
            (join_predicate("R1", "x", "R2", "y"), column_equality("R1", "x", "v"))
        )
        implied = result.implied_by_rule(ClosureRule.JOIN_LOCAL_TO_JOIN)
        assert join_predicate("R1", "v", "R2", "y") in implied


class TestRuleE:
    """(R1.x = R2.y) AND (R1.x op c) => (R2.y op c)."""

    @pytest.mark.parametrize("op", [Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE])
    def test_all_comparison_operators_propagate(self, op):
        result = transitive_closure(
            (join_predicate("R1", "x", "R2", "y"), local_predicate("R1", "x", op, 100))
        )
        implied = result.implied_by_rule(ClosureRule.JOIN_LOCAL_TO_CONSTANT)
        assert local_predicate("R2", "y", op, 100) in implied

    def test_constant_propagates_to_entire_class(self):
        result = transitive_closure(
            (
                join_predicate("S", "s", "M", "m"),
                join_predicate("M", "m", "B", "b"),
                local_predicate("S", "s", Op.LT, 100),
            )
        )
        constants = [
            p for p in result.predicates if p.kind.value == "constant-local"
        ]
        tables = {p.left.table for p in constants}
        assert tables == {"S", "M", "B"}

    def test_constant_propagates_within_a_table(self):
        result = transitive_closure(
            (column_equality("R", "a", "b"), local_predicate("R", "a", Op.GT, 7))
        )
        assert local_predicate("R", "b", Op.GT, 7) in result.predicates


class TestClosureMechanics:
    def test_duplicates_removed_from_input(self):
        p = local_predicate("R", "x", Op.GT, 500)
        result = transitive_closure((p, p))
        assert result.predicates.count(p) == 1

    def test_no_implied_predicates_for_independent_joins(self):
        result = transitive_closure(
            (join_predicate("A", "x", "B", "y"), join_predicate("C", "u", "D", "v"))
        )
        assert result.implied == ()

    def test_closure_is_idempotent(self):
        first = transitive_closure(
            (
                join_predicate("R1", "x", "R2", "y"),
                join_predicate("R2", "y", "R3", "z"),
                local_predicate("R1", "x", Op.LT, 10),
            )
        )
        second = transitive_closure(first.predicates)
        assert set(second.predicates) == set(first.predicates)
        assert second.implied == ()

    def test_equivalence_classes_attached(self):
        result = transitive_closure(
            (join_predicate("R1", "x", "R2", "y"), join_predicate("R2", "y", "R3", "z"))
        )
        assert result.equivalence.same(ColumnRef("R1", "x"), ColumnRef("R3", "z"))

    def test_implied_predicates_have_sources(self):
        result = transitive_closure(
            (join_predicate("R1", "x", "R2", "y"), join_predicate("R2", "y", "R3", "z"))
        )
        (implied,) = result.implied
        assert len(implied.sources) == 2
        assert "rule a" in str(implied)

    def test_nonequality_join_predicates_pass_through(self):
        lt = join_predicate("A", "x", "B", "y", Op.LT)
        result = transitive_closure((lt,))
        assert result.predicates == (lt,)
        assert result.implied == ()

    def test_string_constants_propagate(self):
        result = transitive_closure(
            (
                join_predicate("A", "x", "B", "y"),
                ComparisonPredicate(ColumnRef("A", "x"), Op.EQ, Literal("k")),
            )
        )
        assert (
            ComparisonPredicate(ColumnRef("B", "y"), Op.EQ, Literal("k"))
            in result.predicates
        )


class TestPaperExperimentClosure:
    def test_smbg_query_closure_shape(self):
        """Section 8: the transformed query has 6 join predicates and local
        predicates on every join column of the class."""
        schemas = {"S": ["s"], "M": ["m"], "B": ["b"], "G": ["g"]}
        query = parse_query(
            "SELECT COUNT(*) FROM S, M, B, G "
            "WHERE s = m AND m = b AND b = g AND s < 100",
            schemas=schemas,
        )
        closed, result = close_query(query)
        joins = [p for p in closed.predicates if p.is_join]
        locals_ = [p for p in closed.predicates if p.is_local]
        assert len(joins) == 6  # all pairs of {s, m, b, g}
        assert len(locals_) == 4  # s<100 plus implied m<100, b<100, g<100
        assert local_predicate("G", "g", Op.LT, 100) in closed.predicates

    def test_close_query_preserves_projection_and_tables(self):
        schemas = {"S": ["s"], "M": ["m"]}
        query = parse_query(
            "SELECT COUNT(*) FROM S, M WHERE s = m AND s < 100", schemas=schemas
        )
        closed, _ = close_query(query)
        assert closed.tables == query.tables
        assert closed.projection.count_star
