"""Regression tests for the ELS6xx dogfood fixes.

The ``--perf`` sweep over ``src/`` flagged real hot-path hazards that
were then fixed: per-resume fingerprint recomputation in the harness
checkpoint loop (ELS604), per-inner-row outer-key re-extraction in the
nested-loop join, and per-call lambda/key-function allocation in the
greedy ground-truth order and Rules SS/LS combination (ELS605).  These
tests pin the *behavior* of the rewritten code so the optimizations
cannot drift semantically, and count the expensive calls so the
quadratic shapes cannot quietly come back.
"""

import random

import pytest

from repro.analysis.harness import _Payload, evaluate_workloads
from repro.analysis.truth import _greedy_order, build_reference_plan
from repro.core.estimator import _by_selectivity
from repro.execution import (
    ExecutionMetrics,
    HashJoinOp,
    NestedLoopJoinOp,
    TableScanOp,
)
from repro.resilience import RetryPolicy
from repro.sql import Op, join_predicate, local_predicate
from repro.workloads import chain_workload

FAST_RETRY = RetryPolicy(max_attempts=2, base_delay_s=0.0)


def small_workloads(count=2):
    return [
        chain_workload(3, random.Random(300 + i), max_rows=400)
        for i in range(count)
    ]


class TestHarnessFingerprintOnce:
    def test_fingerprint_computed_once_per_payload(self, tmp_path, monkeypatch):
        """A checkpointed sweep digests each payload exactly once (ELS604)."""
        calls = []
        real_fingerprint = _Payload.fingerprint

        def counting_fingerprint(self):
            calls.append(self.index)
            return real_fingerprint(self)

        monkeypatch.setattr(_Payload, "fingerprint", counting_fingerprint)
        workloads = small_workloads(2)
        path = str(tmp_path / "sweep.jsonl")
        evaluate_workloads(
            workloads, seed=7, retry=FAST_RETRY, checkpoint_path=path
        )
        assert sorted(calls) == [0, 1]

        calls.clear()
        evaluate_workloads(
            workloads, seed=7, retry=FAST_RETRY, checkpoint_path=path
        )
        assert sorted(calls) == [0, 1]  # resume also digests once each

    def test_uncheckpointed_sweep_never_fingerprints(self, monkeypatch):
        def failing_fingerprint(self):
            raise AssertionError("fingerprint() without a checkpoint")

        monkeypatch.setattr(_Payload, "fingerprint", failing_fingerprint)
        results = evaluate_workloads(
            small_workloads(1), seed=7, retry=FAST_RETRY
        )
        assert results


def scan(relation, columns, rows, metrics):
    return TableScanOp(relation, columns, rows, metrics, 0.0)


class TestNestedLoopKeyHoist:
    """The hoisted per-outer-row key must preserve exact join semantics."""

    LEFT = [(1, 10), (2, 20), (2, 21), (3, 30)]
    RIGHT = [(2, 5), (2, 6), (3, 7), (4, 8)]

    def _join(self, join_class, predicates):
        metrics = ExecutionMetrics()
        left = scan("L", ["k", "v"], self.LEFT, metrics)
        right = scan("R", ["k", "w"], self.RIGHT, metrics)
        return sorted(join_class(left, right, predicates, metrics).rows())

    def test_equi_join_matches_hash_join(self):
        predicates = [join_predicate("L", "k", "R", "k")]
        assert self._join(NestedLoopJoinOp, predicates) == self._join(
            HashJoinOp, predicates
        )

    def test_multi_key_join_matches_brute_force(self):
        predicates = [
            join_predicate("L", "k", "R", "k"),
            join_predicate("L", "v", "R", "w"),
        ]
        rows = [(2, 5, 2, 5)]
        metrics = ExecutionMetrics()
        left = scan("L", ["k", "v"], [(2, 5), (2, 6)], metrics)
        right = scan("R", ["k", "w"], [(2, 5), (3, 5)], metrics)
        op = NestedLoopJoinOp(left, right, predicates, metrics)
        assert sorted(op.rows()) == rows

    def test_keyless_residual_join(self):
        """No equi-key: every pair must reach the residual predicate."""
        predicates = [
            join_predicate("L", "k", "R", "k", op=Op.LT),
        ]
        result = self._join(NestedLoopJoinOp, predicates)
        expected = sorted(
            l + r for l in self.LEFT for r in self.RIGHT if l[0] < r[0]
        )
        assert result == expected

    def test_pure_cross_product(self):
        result = self._join(NestedLoopJoinOp, [])
        assert len(result) == len(self.LEFT) * len(self.RIGHT)

    def test_residual_on_top_of_equi_key(self):
        predicates = [
            join_predicate("L", "k", "R", "k"),
            join_predicate("L", "v", "R", "w", op=Op.GT),
        ]
        result = self._join(NestedLoopJoinOp, predicates)
        expected = sorted(
            l + r
            for l in self.LEFT
            for r in self.RIGHT
            if l[0] == r[0] and l[1] > r[1]
        )
        assert result == expected


class TestGreedyOrderRank:
    def test_smallest_table_first(self):
        workload = chain_workload(3, random.Random(41), max_rows=500)
        from repro.analysis.harness import build_database

        database = build_database(workload.specs, seed=41)
        order = _greedy_order(workload.query, database)
        sizes = {
            relation: database.table(
                workload.query.base_table(relation)
            ).row_count
            for relation in workload.query.tables
        }
        first = order[0]
        assert sizes[first] == min(sizes.values())
        assert sorted(order) == sorted(workload.query.tables)
        # The order must be a deterministic function of the inputs.
        assert order == _greedy_order(workload.query, database)

    def test_reference_plan_still_builds(self):
        workload = chain_workload(3, random.Random(42), max_rows=500)
        from repro.analysis.harness import build_database

        database = build_database(workload.specs, seed=42)
        plan = build_reference_plan(workload.query, database)
        assert plan is not None


class TestSelectivityKey:
    def test_module_level_key_orders_by_selectivity(self):
        class _Prepared:
            def __init__(self, selectivity):
                self.selectivity = selectivity

        members = [_Prepared(0.5), _Prepared(0.1), _Prepared(0.9)]
        assert min(members, key=_by_selectivity).selectivity == 0.1
        assert max(members, key=_by_selectivity).selectivity == 0.9
