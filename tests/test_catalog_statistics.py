"""Statistics and catalog tests: validation, lookup, paper-style builders."""

import pytest

from repro.catalog import Catalog, ColumnStats, TableSchema, TableStats
from repro.errors import CatalogError


class TestColumnStats:
    def test_negative_distinct_rejected(self):
        with pytest.raises(CatalogError):
            ColumnStats(distinct=-1)

    def test_inverted_range_rejected(self):
        with pytest.raises(CatalogError):
            ColumnStats(distinct=1, low=10, high=0)

    def test_has_range(self):
        assert ColumnStats(distinct=5, low=1, high=5).has_range
        assert not ColumnStats(distinct=5).has_range
        assert not ColumnStats(distinct=5, low=1).has_range

    def test_span(self):
        assert ColumnStats(distinct=10, low=1, high=11).span == 10.0
        assert ColumnStats(distinct=10).span is None

    def test_scaled_replaces_distinct_only(self):
        stats = ColumnStats(distinct=10, low=1, high=10)
        scaled = stats.scaled(3)
        assert scaled.distinct == 3
        assert scaled.low == 1 and scaled.high == 10


class TestTableStats:
    def test_negative_rows_rejected(self):
        with pytest.raises(CatalogError):
            TableStats(row_count=-1)

    def test_distinct_exceeding_rows_rejected(self):
        with pytest.raises(CatalogError):
            TableStats(row_count=5, columns={"x": ColumnStats(distinct=6)})

    def test_column_lookup(self):
        stats = TableStats(row_count=10, columns={"x": ColumnStats(distinct=5)})
        assert stats.column("x").distinct == 5
        assert stats.has_column("x") and not stats.has_column("y")
        with pytest.raises(CatalogError):
            stats.column("y")

    def test_simple_builder_sets_paper_style_ranges(self):
        stats = TableStats.simple(1000, {"x": 100})
        column = stats.column("x")
        assert column.distinct == 100
        assert column.low == 1 and column.high == 100

    def test_columns_are_copied(self):
        source = {"x": ColumnStats(distinct=1)}
        stats = TableStats(row_count=5, columns=source)
        source["y"] = ColumnStats(distinct=2)
        assert not stats.has_column("y")


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        catalog.register_simple("R", 100, {"x": 10})
        assert "R" in catalog
        assert catalog.stats("R").row_count == 100
        assert catalog.column_stats("R", "x").distinct == 10

    def test_unknown_table_raises(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.stats("nope")
        with pytest.raises(CatalogError):
            catalog.schema("nope")

    def test_stats_must_match_schema(self):
        catalog = Catalog()
        schema = TableSchema.of("R", "x")
        bad = TableStats(row_count=5, columns={"zz": ColumnStats(distinct=1)})
        with pytest.raises(CatalogError):
            catalog.register(schema, bad)

    def test_update_stats_requires_registration(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.update_stats("R", TableStats(row_count=1))

    def test_update_stats_replaces(self):
        catalog = Catalog()
        catalog.register_simple("R", 100, {"x": 10})
        catalog.update_stats("R", TableStats.simple(50, {"x": 5}))
        assert catalog.stats("R").row_count == 50

    def test_from_stats_builder(self):
        catalog = Catalog.from_stats({"R1": (100, {"x": 10}), "R2": (1000, {"y": 100})})
        assert catalog.tables() == ("R1", "R2")
        assert catalog.column_stats("R2", "y").distinct == 100

    def test_schemas_by_column(self):
        catalog = Catalog.from_stats({"R": (10, {"a": 5, "b": 2})})
        assert catalog.schemas_by_column() == {"R": ("a", "b")}

    def test_paper_example_1b_catalog(self):
        catalog = Catalog.from_stats(
            {
                "R1": (100, {"x": 10}),
                "R2": (1000, {"y": 100}),
                "R3": (1000, {"z": 1000}),
            }
        )
        assert catalog.column_stats("R1", "x").distinct == 10
        assert catalog.column_stats("R3", "z").distinct == 1000
