"""Layer-2 semantic diagnostics (ELS2xx) and the estimator invariant hook.

Covers each code with a minimal hand-built query, the
``check_estimator_input`` raise contract, and the closure property: every
closure-completed paper and generated workload query is diagnostic-free.
"""

import random

import pytest

from repro import ELS, Catalog, DiagnosticError, JoinSizeEstimator, analyze_query
from repro.catalog.statistics import ColumnStats
from repro.core.closure import close_query
from repro.core.equivalence import EquivalenceClasses
from repro.lint.diagnostics import Severity
from repro.lint.semantic import check_estimator_input
from repro.sql.predicates import ColumnRef, Op, join_predicate, local_predicate
from repro.sql.query import Projection, Query
from repro.workloads import paper, queries


def make_catalog():
    return Catalog.from_stats(
        {
            "R1": (100, {"x": 10, "a": 5}),
            "R2": (1000, {"y": 100}),
            "R3": (1000, {"z": 1000}),
        }
    )


def chain_query():
    return Query.build(
        ["R1", "R2", "R3"],
        [join_predicate("R1", "x", "R2", "y"), join_predicate("R2", "y", "R3", "z")],
        Projection(count_star=True),
    )


def codes_of(diagnostics):
    return sorted(d.code for d in diagnostics)


class TestClosureFixpoint:
    def test_missing_implied_predicate_is_els201(self):
        diagnostics = analyze_query(chain_query(), expect_closure=True)
        assert "ELS201" in codes_of(diagnostics)
        finding = next(d for d in diagnostics if d.code == "ELS201")
        assert "R1.x = R3.z" in finding.context
        assert finding.severity is Severity.ERROR

    def test_closed_query_is_clean(self):
        closed, result = close_query(chain_query())
        diagnostics = analyze_query(
            closed, make_catalog(), result.equivalence, expect_closure=True
        )
        assert diagnostics == []

    def test_no_ptc_mode_skips_the_check(self):
        assert "ELS201" not in codes_of(
            analyze_query(chain_query(), expect_closure=False)
        )


class TestPartition:
    def test_equivalence_missing_a_union_is_els202(self):
        query = Query.build(
            ["R1", "R2"], [join_predicate("R1", "x", "R2", "y")]
        )
        stale = EquivalenceClasses()
        stale.add(ColumnRef("R1", "x"))
        stale.add(ColumnRef("R2", "y"))
        diagnostics = analyze_query(query, equivalence=stale, expect_closure=False)
        assert codes_of(diagnostics) == ["ELS202"]

    def test_consistent_classes_are_clean(self):
        query = Query.build(["R1", "R2"], [join_predicate("R1", "x", "R2", "y")])
        good = EquivalenceClasses.from_predicates(query.predicates)
        assert analyze_query(query, equivalence=good, expect_closure=False) == []


class TestDuplicatesAndContradictions:
    def test_surviving_duplicate_is_els203_warning(self):
        predicate = join_predicate("R1", "x", "R2", "y").canonical()
        query = Query(tables=("R1", "R2"), predicates=(predicate, predicate))
        diagnostics = analyze_query(query, expect_closure=False)
        assert codes_of(diagnostics) == ["ELS203"]
        assert diagnostics[0].severity is Severity.WARNING

    def test_conflicting_equality_constants_are_els203_error(self):
        query = Query.build(
            ["R1"],
            [
                local_predicate("R1", "x", Op.EQ, 5),
                local_predicate("R1", "x", Op.EQ, 7),
            ],
        )
        diagnostics = analyze_query(query, expect_closure=False)
        assert codes_of(diagnostics) == ["ELS203"]
        assert diagnostics[0].severity is Severity.ERROR

    def test_equality_outside_range_bound_is_els203_error(self):
        query = Query.build(
            ["R1"],
            [
                local_predicate("R1", "x", Op.EQ, 5),
                local_predicate("R1", "x", Op.GT, 10),
            ],
        )
        assert codes_of(analyze_query(query, expect_closure=False)) == ["ELS203"]

    def test_empty_range_is_els203_error(self):
        query = Query.build(
            ["R1"],
            [
                local_predicate("R1", "x", Op.GT, 10),
                local_predicate("R1", "x", Op.LT, 5),
            ],
        )
        assert codes_of(analyze_query(query, expect_closure=False)) == ["ELS203"]

    def test_satisfiable_range_is_clean(self):
        query = Query.build(
            ["R1"],
            [
                local_predicate("R1", "x", Op.GE, 5),
                local_predicate("R1", "x", Op.LE, 5),
            ],
        )
        assert analyze_query(query, expect_closure=False) == []


class TestCatalogConsistency:
    def test_distinct_above_row_count_is_els204(self):
        catalog = make_catalog()
        # TableStats validates d <= ||R|| at construction, so simulate a
        # corrupted catalog by editing the (plain-dict) column map afterwards.
        catalog.stats("R1").columns["x"] = ColumnStats(distinct=500, low=1, high=500)
        query = Query.build(["R1", "R2"], [join_predicate("R1", "x", "R2", "y")])
        diagnostics = analyze_query(query, catalog, expect_closure=False)
        assert codes_of(diagnostics) == ["ELS204"]
        assert "R1.x" in diagnostics[0].context

    def test_missing_table_stats_is_els206(self):
        query = Query.build(["R1", "R9"], [join_predicate("R1", "x", "R9", "k")])
        diagnostics = analyze_query(query, make_catalog(), expect_closure=False)
        assert codes_of(diagnostics) == ["ELS206"]

    def test_missing_column_stats_is_els206(self):
        query = Query.build(["R1", "R2"], [join_predicate("R1", "ghost", "R2", "y")])
        diagnostics = analyze_query(query, make_catalog(), expect_closure=False)
        assert codes_of(diagnostics) == ["ELS206"]
        assert "R1.ghost" in diagnostics[0].context


class TestUnfoldedJEquivalence:
    def test_missing_local_equality_is_els205(self):
        # R1.x ~ R1.a through R2.y, but the implied R1.a = R1.x local
        # predicate (closure rule b) was never folded in.
        query = Query.build(
            ["R1", "R2"],
            [
                join_predicate("R1", "x", "R2", "y"),
                join_predicate("R1", "a", "R2", "y"),
            ],
        )
        diagnostics = analyze_query(query, expect_closure=True)
        assert "ELS205" in codes_of(diagnostics)
        finding = next(d for d in diagnostics if d.code == "ELS205")
        assert finding.severity is Severity.WARNING

    def test_folded_equality_silences_els205(self):
        closed, result = close_query(
            Query.build(
                ["R1", "R2"],
                [
                    join_predicate("R1", "x", "R2", "y"),
                    join_predicate("R1", "a", "R2", "y"),
                ],
            )
        )
        diagnostics = analyze_query(
            closed, equivalence=result.equivalence, expect_closure=True
        )
        assert "ELS205" not in codes_of(diagnostics)


class TestConnectivity:
    def test_disconnected_join_graph_is_els207(self):
        query = Query.build(
            ["R1", "R2", "R3"], [join_predicate("R1", "x", "R2", "y")]
        )
        diagnostics = analyze_query(query, expect_closure=False)
        assert codes_of(diagnostics) == ["ELS207"]
        assert diagnostics[0].severity is Severity.WARNING
        assert "R3" in diagnostics[0].context

    def test_single_table_query_is_never_disconnected(self):
        query = Query.build(["R1"], [local_predicate("R1", "x", Op.GT, 1)])
        assert analyze_query(query, expect_closure=False) == []


class TestEstimatorHook:
    def test_check_estimator_input_raises_on_errors(self):
        query = Query.build(
            ["R1"],
            [
                local_predicate("R1", "x", Op.EQ, 5),
                local_predicate("R1", "x", Op.EQ, 7),
            ],
        )
        with pytest.raises(DiagnosticError) as excinfo:
            check_estimator_input(query, expect_closure=False)
        assert any(d.code == "ELS203" for d in excinfo.value.diagnostics)
        assert "ELS203" in str(excinfo.value)

    def test_check_estimator_input_returns_warnings(self):
        query = Query.build(
            ["R1", "R2", "R3"], [join_predicate("R1", "x", "R2", "y")]
        )
        diagnostics = check_estimator_input(query, expect_closure=False)
        assert codes_of(diagnostics) == ["ELS207"]

    def test_estimator_flag_off_by_default(self):
        contradictory = Query.build(
            ["R1", "R2"],
            [
                join_predicate("R1", "x", "R2", "y"),
                local_predicate("R1", "x", Op.EQ, 5),
                local_predicate("R1", "x", Op.EQ, 7),
            ],
        )
        JoinSizeEstimator(contradictory, make_catalog(), ELS)  # must not raise

    def test_estimator_flag_raises_diagnostic_error(self):
        contradictory = Query.build(
            ["R1", "R2"],
            [
                join_predicate("R1", "x", "R2", "y"),
                local_predicate("R1", "x", Op.EQ, 5),
                local_predicate("R1", "x", Op.EQ, 7),
            ],
        )
        with pytest.raises(DiagnosticError):
            JoinSizeEstimator(
                contradictory, make_catalog(), ELS.but(check_invariants=True)
            )

    def test_estimator_flag_passes_clean_query(self):
        estimator = JoinSizeEstimator(
            chain_query(), make_catalog(), ELS.but(check_invariants=True)
        )
        assert estimator.estimate(["R2", "R3", "R1"]) == pytest.approx(1000.0)


class TestClosureProperty:
    """Closure-completed workload queries must produce zero diagnostics."""

    @pytest.mark.parametrize(
        "catalog_fn,query_fn",
        [
            (paper.example_1b_catalog, paper.example_1b_query),
            (paper.section6_catalog, paper.section6_query),
            (paper.smbg_catalog, paper.smbg_query),
        ],
        ids=["example-1b", "section-6", "smbg"],
    )
    def test_paper_workloads_are_clean(self, catalog_fn, query_fn):
        closed, result = close_query(query_fn())
        diagnostics = analyze_query(
            closed, catalog_fn(), result.equivalence, expect_closure=True
        )
        assert diagnostics == [], codes_of(diagnostics)

    @pytest.mark.parametrize("seed", range(5))
    def test_generated_workloads_are_clean(self, seed):
        rng = random.Random(seed)
        generated = [
            queries.chain_workload(4, rng, local_predicate_probability=0.5),
            queries.star_workload(3, rng),
            queries.clique_workload(4, rng),
            queries.cycle_workload(4, rng),
            queries.snowflake_workload(2, 2, rng),
        ]
        for workload in generated:
            closed, result = close_query(workload.query)
            diagnostics = analyze_query(
                closed, equivalence=result.equivalence, expect_closure=True
            )
            assert diagnostics == [], (workload, codes_of(diagnostics))
