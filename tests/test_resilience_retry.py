"""Retry policy: deterministic backoff, bounded attempts, failure reports."""

import pytest

from repro.errors import EstimationError, RetryExhaustedError
from repro.resilience import DEFAULT_RETRY_POLICY, FailureReport, RetryPolicy, retry_call


class TestRetryPolicyValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-0.1)

    def test_rejects_submultiplicative_growth(self):
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_rejects_out_of_range_jitter(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_default_policy_is_valid(self):
        assert DEFAULT_RETRY_POLICY.max_attempts >= 2


class TestBackoffDeterminism:
    def test_same_seed_and_attempt_always_same_delay(self):
        policy = RetryPolicy()
        for attempt in range(4):
            assert policy.delay_s(attempt, seed=7) == policy.delay_s(
                attempt, seed=7
            )

    def test_different_seeds_decorrelate(self):
        policy = RetryPolicy(jitter=0.5)
        delays = {policy.delay_s(1, seed=s) for s in range(16)}
        assert len(delays) > 1

    def test_delay_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(
            base_delay_s=0.1, multiplier=2.0, max_delay_s=100.0, jitter=0.0
        )
        assert policy.delay_s(0) == pytest.approx(0.1)
        assert policy.delay_s(1) == pytest.approx(0.2)
        assert policy.delay_s(3) == pytest.approx(0.8)

    def test_delay_respects_the_cap(self):
        policy = RetryPolicy(
            base_delay_s=1.0, multiplier=10.0, max_delay_s=2.0, jitter=0.0
        )
        assert policy.delay_s(5) == pytest.approx(2.0)

    def test_jitter_stays_within_the_band(self):
        policy = RetryPolicy(
            base_delay_s=1.0, multiplier=1.0, max_delay_s=1.0, jitter=0.25
        )
        for seed in range(32):
            delay = policy.delay_s(0, seed=seed)
            assert 0.75 <= delay <= 1.25

    def test_rejects_negative_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_s(-1)

    def test_zero_base_delay_never_sleeps(self):
        policy = RetryPolicy(base_delay_s=0.0)
        assert policy.delay_s(0) == 0.0
        assert policy.delay_s(3) == 0.0


class TestRetryCall:
    def test_returns_first_success(self):
        calls = []

        def action():
            calls.append(1)
            return "done"

        result = retry_call(action, RetryPolicy(max_attempts=3), sleep=lambda s: None)
        assert result == "done"
        assert len(calls) == 1

    def test_retries_until_success(self):
        state = {"failures": 2}
        slept = []

        def action():
            if state["failures"] > 0:
                state["failures"] -= 1
                raise EstimationError("transient")
            return 42

        result = retry_call(
            action,
            RetryPolicy(max_attempts=3, base_delay_s=0.5, jitter=0.0),
            sleep=slept.append,
        )
        assert result == 42
        assert len(slept) == 2  # one backoff before each retry
        assert slept[0] == pytest.approx(0.5)

    def test_exhaustion_raises_with_attempts_and_cause(self):
        def action():
            raise EstimationError("always broken")

        with pytest.raises(RetryExhaustedError) as excinfo:
            retry_call(
                action,
                RetryPolicy(max_attempts=2, base_delay_s=0.0),
                sleep=lambda s: None,
                label="truth",
            )
        error = excinfo.value
        assert error.attempts == 2
        assert isinstance(error.last_error, EstimationError)
        assert "truth" in str(error)

    def test_nonretryable_errors_propagate_immediately(self):
        calls = []

        def action():
            calls.append(1)
            raise KeyError("not a ReproError")

        with pytest.raises(KeyError):
            retry_call(action, RetryPolicy(max_attempts=5), sleep=lambda s: None)
        assert len(calls) == 1


class TestFailureReport:
    def test_round_trips_through_dict(self):
        report = FailureReport(
            kind="deadline", attempts=3, elapsed_s=1.25, message="too slow"
        )
        assert FailureReport.from_dict(report.to_dict()) == report

    def test_message_defaults_empty(self):
        report = FailureReport.from_dict(
            {"kind": "crash", "attempts": 1, "elapsed_s": 0.0}
        )
        assert report.message == ""
