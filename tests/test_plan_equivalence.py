"""Cross-enumerator, cross-method execution equivalence.

Every plan the library can produce for a query — any enumerator, any join
method repertoire, any estimation algorithm — must return the same result
when executed.  This is the system-level safety net: estimation quality may
vary wildly (that is the paper's subject), correctness may not.
"""

import random

import pytest

from repro.core import ELS, SM, SSS
from repro.execution import Executor
from repro.optimizer import JoinMethod, Optimizer
from repro.workloads import (
    build_database,
    chain_workload,
    cycle_workload,
    snowflake_workload,
    star_workload,
)

ALL_METHODS = (JoinMethod.NESTED_LOOPS, JoinMethod.SORT_MERGE, JoinMethod.HASH)


def run_all_plans(workload, seed):
    database = build_database(workload.specs, seed=seed)
    executor = Executor(database)
    counts = {}
    for enumerator in ("dp", "dp-bushy", "greedy", "random"):
        for methods in (None, ALL_METHODS):
            kwargs = {"enumerator": enumerator, "seed": 3}
            if methods is not None:
                kwargs["methods"] = methods
            optimizer = Optimizer(database.catalog, **kwargs)
            for config, closure in ((ELS, True), (SM, True), (SM, False), (SSS, True)):
                result = optimizer.optimize(workload.query, config, apply_closure=closure)
                key = (enumerator, methods is not None, config.rule.value, closure)
                counts[key] = executor.count(result.plan).count
    return counts


@pytest.mark.parametrize(
    "factory,seed",
    [
        (lambda rng: chain_workload(3, rng, min_rows=50, max_rows=400), 1),
        (lambda rng: chain_workload(4, rng, min_rows=50, max_rows=300,
                                    local_predicate_probability=0.5), 2),
        (lambda rng: star_workload(2, rng, fact_rows_range=(500, 1500),
                                   dim_rows_range=(20, 200)), 3),
        (lambda rng: cycle_workload(3, rng, min_rows=50, max_rows=300), 4),
        (lambda rng: snowflake_workload(2, 1, rng,
                                        fact_rows_range=(400, 1000),
                                        dim_rows_range=(40, 150),
                                        subdim_rows_range=(10, 60)), 5),
    ],
    ids=["chain3", "chain4-locals", "star2", "cycle3", "snowflake"],
)
def test_all_plans_agree(factory, seed):
    workload = factory(random.Random(seed))
    counts = run_all_plans(workload, seed)
    distinct_counts = set(counts.values())
    assert len(distinct_counts) == 1, f"plans disagree: {counts}"
