"""CLI tests: every subcommand against a statistics file on disk."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def stats_file(tmp_path):
    path = tmp_path / "stats.json"
    path.write_text(
        json.dumps(
            {
                "R1": {"rows": 100, "columns": {"x": 10}},
                "R2": {"rows": 1000, "columns": {"y": 100}},
                "R3": {"rows": 1000, "columns": {"z": 1000}},
            }
        )
    )
    return str(path)


QUERY = "SELECT * FROM R1, R2, R3 WHERE R1.x = R2.y AND R2.y = R3.z"


class TestEstimate:
    def test_els_default(self, stats_file, capsys):
        code = main(["estimate", "--stats", stats_file, "--query", QUERY])
        out = capsys.readouterr().out
        assert code == 0
        assert "final estimate: 1000" in out

    def test_explicit_order(self, stats_file, capsys):
        code = main(
            [
                "estimate",
                "--stats",
                stats_file,
                "--query",
                QUERY,
                "--order",
                "R2,R3,R1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "R1" in out and "final estimate: 1000" in out

    def test_rule_m_underestimates(self, stats_file, capsys):
        code = main(
            [
                "estimate",
                "--stats",
                stats_file,
                "--query",
                QUERY,
                "--algorithm",
                "sm",
                "--order",
                "R2,R3,R1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "final estimate: 1" in out.splitlines()[-1]

    def test_no_ptc_flag(self, stats_file, capsys):
        code = main(
            [
                "estimate",
                "--stats",
                stats_file,
                "--query",
                QUERY,
                "--no-ptc",
                "--order",
                "R1,R3,R2",  # R1 >< R3 is a cartesian product without PTC
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "100000" in out  # 100 * 1000 cartesian intermediate

    def test_unqualified_columns_resolved_from_stats(self, stats_file, capsys):
        code = main(
            [
                "estimate",
                "--stats",
                stats_file,
                "--query",
                "SELECT * FROM R1, R2 WHERE x = y",
            ]
        )
        assert code == 0

    def test_bad_stats_path_is_error_exit(self, capsys):
        code = main(["estimate", "--stats", "/nonexistent.json", "--query", QUERY])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestOptimize:
    def test_plan_printed(self, stats_file, capsys):
        code = main(["optimize", "--stats", stats_file, "--query", QUERY])
        out = capsys.readouterr().out
        assert code == 0
        assert "Join" in out and "join order:" in out and "estimated cost:" in out

    def test_greedy_enumerator(self, stats_file, capsys):
        code = main(
            [
                "optimize",
                "--stats",
                stats_file,
                "--query",
                QUERY,
                "--enumerator",
                "greedy",
            ]
        )
        assert code == 0


class TestClosure:
    def test_implied_predicates_listed(self, stats_file, capsys):
        code = main(["closure", "--stats", stats_file, "--query", QUERY])
        out = capsys.readouterr().out
        assert code == 0
        assert "R1.x = R3.z" in out
        assert "[rule a]" in out

    def test_no_implied(self, stats_file, capsys):
        code = main(
            [
                "closure",
                "--stats",
                stats_file,
                "--query",
                "SELECT * FROM R1, R2 WHERE R1.x = R2.y",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "no implied predicates" in out


class TestDemo:
    def test_demo_runs_small(self, capsys):
        code = main(["demo", "--scale", "0.02"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ELS" in out and "SM (no PTC)" in out


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_algorithm_exits(self, stats_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "estimate",
                    "--stats",
                    stats_file,
                    "--query",
                    QUERY,
                    "--algorithm",
                    "magic",
                ]
            )


class TestNewEnumerators:
    @pytest.mark.parametrize("enumerator", ["dp-bushy", "random", "annealing"])
    def test_optimize_with_enumerator(self, stats_file, capsys, enumerator):
        code = main(
            [
                "optimize",
                "--stats",
                stats_file,
                "--query",
                QUERY,
                "--enumerator",
                enumerator,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "join order:" in out

    def test_frequency_stats_flag_accepted(self, stats_file, capsys):
        code = main(
            [
                "estimate",
                "--stats",
                stats_file,
                "--query",
                QUERY,
                "--frequency-stats",
            ]
        )
        assert code == 0
        # Stats-JSON files carry no MCVs/histograms, so the flag is inert.
        assert "final estimate: 1000" in capsys.readouterr().out
