"""CLI tests: every subcommand against a statistics file on disk."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def stats_file(tmp_path):
    path = tmp_path / "stats.json"
    path.write_text(
        json.dumps(
            {
                "R1": {"rows": 100, "columns": {"x": 10}},
                "R2": {"rows": 1000, "columns": {"y": 100}},
                "R3": {"rows": 1000, "columns": {"z": 1000}},
            }
        )
    )
    return str(path)


QUERY = "SELECT * FROM R1, R2, R3 WHERE R1.x = R2.y AND R2.y = R3.z"


class TestEstimate:
    def test_els_default(self, stats_file, capsys):
        code = main(["estimate", "--stats", stats_file, "--query", QUERY])
        out = capsys.readouterr().out
        assert code == 0
        assert "final estimate: 1000" in out

    def test_explicit_order(self, stats_file, capsys):
        code = main(
            [
                "estimate",
                "--stats",
                stats_file,
                "--query",
                QUERY,
                "--order",
                "R2,R3,R1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "R1" in out and "final estimate: 1000" in out

    def test_rule_m_underestimates(self, stats_file, capsys):
        code = main(
            [
                "estimate",
                "--stats",
                stats_file,
                "--query",
                QUERY,
                "--algorithm",
                "sm",
                "--order",
                "R2,R3,R1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "final estimate: 1" in out.splitlines()[-1]

    def test_no_ptc_flag(self, stats_file, capsys):
        code = main(
            [
                "estimate",
                "--stats",
                stats_file,
                "--query",
                QUERY,
                "--no-ptc",
                "--order",
                "R1,R3,R2",  # R1 >< R3 is a cartesian product without PTC
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "100000" in out  # 100 * 1000 cartesian intermediate

    def test_unqualified_columns_resolved_from_stats(self, stats_file, capsys):
        code = main(
            [
                "estimate",
                "--stats",
                stats_file,
                "--query",
                "SELECT * FROM R1, R2 WHERE x = y",
            ]
        )
        assert code == 0

    def test_bad_stats_path_is_error_exit(self, capsys):
        code = main(["estimate", "--stats", "/nonexistent.json", "--query", QUERY])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestOptimize:
    def test_plan_printed(self, stats_file, capsys):
        code = main(["optimize", "--stats", stats_file, "--query", QUERY])
        out = capsys.readouterr().out
        assert code == 0
        assert "Join" in out and "join order:" in out and "estimated cost:" in out

    def test_greedy_enumerator(self, stats_file, capsys):
        code = main(
            [
                "optimize",
                "--stats",
                stats_file,
                "--query",
                QUERY,
                "--enumerator",
                "greedy",
            ]
        )
        assert code == 0


class TestClosure:
    def test_implied_predicates_listed(self, stats_file, capsys):
        code = main(["closure", "--stats", stats_file, "--query", QUERY])
        out = capsys.readouterr().out
        assert code == 0
        assert "R1.x = R3.z" in out
        assert "[rule a]" in out

    def test_no_implied(self, stats_file, capsys):
        code = main(
            [
                "closure",
                "--stats",
                stats_file,
                "--query",
                "SELECT * FROM R1, R2 WHERE R1.x = R2.y",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "no implied predicates" in out


class TestDemo:
    def test_demo_runs_small(self, capsys):
        code = main(["demo", "--scale", "0.02"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ELS" in out and "SM (no PTC)" in out

    @pytest.mark.parametrize("engine", ["row", "columnar"])
    def test_engine_flag(self, capsys, engine):
        code = main(["demo", "--scale", "0.02", "--engine", engine])
        assert code == 0
        assert "ELS" in capsys.readouterr().out


class TestBench:
    def _run(self, tmp_path, capsys, *extra):
        output = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--scale",
                "0.02",
                "--repeats",
                "1",
                "--no-sweep",
                "--output",
                str(output),
                *extra,
            ]
        )
        return code, output, capsys.readouterr()

    def test_writes_parseable_report(self, tmp_path, capsys):
        code, output, captured = self._run(tmp_path, capsys)
        assert code == 0
        assert "Execution benchmark" in captured.out
        report = json.loads(output.read_text())
        assert report["meta"]["scale"] == 0.02
        assert report["meta"]["engines"] == ["row", "columnar"]
        assert "machine" in report["meta"]
        assert len(report["prefixes"]) == 3
        for prefix in report["prefixes"]:
            assert prefix["true_count"] >= 0
            assert prefix["row_truth_s"] > 0
            assert prefix["columnar_truth_s"] > 0
        assert report["overall"]["speedup"] > 0
        assert "parallel_sweep" not in report

    def test_sweep_section_recorded(self, tmp_path, capsys):
        output = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--scale",
                "0.02",
                "--repeats",
                "1",
                "--workers",
                "2",
                "--output",
                str(output),
            ]
        )
        capsys.readouterr()
        assert code == 0
        report = json.loads(output.read_text())
        assert report["parallel_sweep"]["workers"] == 2
        assert report["parallel_sweep"]["workloads"] == 3

    def test_unreachable_min_speedup_fails(self, tmp_path, capsys):
        code, output, captured = self._run(tmp_path, capsys, "--min-speedup", "1e9")
        assert code == 1
        assert "FAIL" in captured.err
        # The report is still written for inspection.
        assert output.exists()

    def test_bad_repeats_is_error_exit(self, tmp_path, capsys):
        code, _, captured = self._run(tmp_path, capsys, "--repeats", "0")
        assert code == 1
        assert "error" in captured.err


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_algorithm_exits(self, stats_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "estimate",
                    "--stats",
                    stats_file,
                    "--query",
                    QUERY,
                    "--algorithm",
                    "magic",
                ]
            )


class TestLint:
    """Exit-code contract: 0 clean, 1 diagnostics, 2 usage error."""

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text('"""Docstring."""\n\nX = 1\n')
        code = main(["lint", str(path)])
        assert code == 0
        assert "clean: no diagnostics" in capsys.readouterr().out

    def test_violation_exits_one_with_its_code(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("def f(xs=[]):\n    return xs\n\nif __name__ == '__main__':\n    f()\n")
        code = main(["lint", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "ELS104" in out and "found 1 diagnostic(s)" in out

    def test_missing_path_is_usage_error(self, capsys):
        code = main(["lint", "/nonexistent/tree"])
        assert code == 2
        assert "usage error:" in capsys.readouterr().err

    def test_json_format_is_parseable(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("def f(xs=[]):\n    return xs\n\nif __name__ == '__main__':\n    f()\n")
        code = main(["lint", str(path), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["total"] == 1
        assert payload["diagnostics"][0]["code"] == "ELS104"

    def test_ignore_filters_to_clean(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("def f(xs=[]):\n    return xs\n\nif __name__ == '__main__':\n    f()\n")
        code = main(["lint", str(path), "--ignore", "ELS104"])
        assert code == 0

    def test_empty_select_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("X = 1\n")
        code = main(["lint", str(path), "--select", " , "])
        assert code == 2
        assert "usage error:" in capsys.readouterr().err

    def test_repo_sources_are_clean(self, capsys):
        import pathlib

        root = pathlib.Path(__file__).parent.parent
        assert main(["lint", str(root / "src")]) == 0

    def test_warnings_only_exits_zero(self, tmp_path, capsys):
        # ELS105 (missing __all__) is warning severity: reported, exit 0.
        path = tmp_path / "warn.py"
        path.write_text('"""Docstring."""\n\n\ndef helper():\n    return 1\n')
        code = main(["lint", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "ELS105" in out

    def test_unknown_select_prefix_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("X = 1\n")
        code = main(["lint", str(path), "--select", "ELS9"])
        assert code == 2
        assert "unknown diagnostic code" in capsys.readouterr().err

    def test_unknown_ignore_prefix_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("X = 1\n")
        code = main(["lint", str(path), "--ignore", "ESL104"])
        assert code == 2
        assert "usage error:" in capsys.readouterr().err

    def test_dataflow_flag_enables_els3xx(self, tmp_path, capsys):
        path = tmp_path / "quantities.py"
        path.write_text(
            "def _estimate(sel_join, n_rows):\n"
            "    return sel_join + n_rows\n"
        )
        assert main(["lint", str(path)]) == 0
        code = main(["lint", str(path), "--dataflow"])
        out = capsys.readouterr().out
        assert code == 1
        assert "ELS301" in out

    def test_no_dataflow_flag_wins_over_dataflow(self, tmp_path, capsys):
        path = tmp_path / "quantities.py"
        path.write_text(
            "def _estimate(sel_join, n_rows):\n"
            "    return sel_join + n_rows\n"
        )
        assert main(["lint", str(path), "--dataflow", "--no-dataflow"]) == 0

    def test_effects_flag_enables_els4xx(self, tmp_path, capsys):
        path = tmp_path / "effects.py"
        path.write_text(
            "import random\n"
            "\n"
            "\n"
            "def evaluate_workloads(workloads):\n"
            "    return [random.random() for _ in workloads]\n"
        )
        assert main(["lint", str(path)]) == 0
        code = main(["lint", str(path), "--effects"])
        out = capsys.readouterr().out
        assert code == 1
        assert "ELS402" in out

    def test_no_effects_flag_wins_over_effects(self, tmp_path, capsys):
        path = tmp_path / "effects.py"
        path.write_text(
            "import random\n"
            "\n"
            "\n"
            "def evaluate_workloads(workloads):\n"
            "    return [random.random() for _ in workloads]\n"
        )
        assert main(["lint", str(path), "--effects", "--no-effects"]) == 0

    def test_concurrency_flag_enables_els5xx(self, tmp_path, capsys):
        path = tmp_path / "asyncmod.py"
        path.write_text(
            "import time\n"
            "\n"
            "\n"
            "async def serve():\n"
            "    time.sleep(1)\n"
        )
        assert main(["lint", str(path)]) == 0
        code = main(["lint", str(path), "--concurrency"])
        out = capsys.readouterr().out
        assert code == 1
        assert "ELS503" in out

    def test_no_concurrency_flag_wins_over_concurrency(self, tmp_path, capsys):
        path = tmp_path / "asyncmod.py"
        path.write_text(
            "import time\n"
            "\n"
            "\n"
            "async def serve():\n"
            "    time.sleep(1)\n"
        )
        assert (
            main(["lint", str(path), "--concurrency", "--no-concurrency"]) == 0
        )

    def test_statistics_flag_prints_per_rule_counts_to_stderr(
        self, tmp_path, capsys
    ):
        path = tmp_path / "dirty.py"
        path.write_text(
            "def f(xs=[]):\n    return xs\n\nif __name__ == '__main__':\n    f()\n"
        )
        code = main(["lint", str(path), "--format", "json", "--statistics"])
        captured = capsys.readouterr()
        assert code == 1
        json.loads(captured.out)  # stdout stays machine-parseable
        assert "per-rule statistics:" in captured.err
        assert "ELS104: 1" in captured.err

    def test_statistics_on_clean_tree(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text('"""Docstring."""\n\nX = 1\n')
        code = main(["lint", str(path), "--statistics"])
        captured = capsys.readouterr()
        assert code == 0
        assert "(no findings)" in captured.err

    def test_jobs_flag_output_matches_serial(self, tmp_path, capsys):
        for name, body in [
            ("dirty_a.py", "def f(xs=[]):\n    return xs\n"),
            ("dirty_b.py", "def g(ys=[]):\n    return ys\n"),
            ("clean_c.py", "X = 1\n"),
        ]:
            (tmp_path / name).write_text(body)
        serial_code = main(["lint", str(tmp_path)])
        serial_out = capsys.readouterr().out
        parallel_code = main(["lint", str(tmp_path), "--jobs", "4"])
        parallel_out = capsys.readouterr().out
        assert serial_code == parallel_code == 1
        assert serial_out == parallel_out

    def test_jobs_zero_means_one_worker_per_cpu(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("X = 1\n")
        code = main(["lint", str(path), "--jobs", "0"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_negative_jobs_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("X = 1\n")
        code = main(["lint", str(path), "--jobs", "-1"])
        assert code == 2
        assert "usage error" in capsys.readouterr().err

    def test_sarif_format_is_parseable(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("def f(xs=[]):\n    return xs\n\nif __name__ == '__main__':\n    f()\n")
        code = main(["lint", str(path), "--format", "sarif"])
        log = json.loads(capsys.readouterr().out)
        assert code == 1
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"][0]["ruleId"] == "ELS104"

    def test_repo_sources_are_dataflow_clean(self, capsys):
        import pathlib

        root = pathlib.Path(__file__).parent.parent
        assert main(["lint", str(root / "src"), "--dataflow"]) == 0

    def test_repo_sources_are_concurrency_clean(self, capsys):
        import pathlib

        root = pathlib.Path(__file__).parent.parent
        assert main(["lint", str(root / "src"), "--concurrency"]) == 0


class TestCheck:
    def test_closed_paper_shape_is_clean(self, stats_file, capsys):
        code = main(["check", "--stats", stats_file, "--query", QUERY])
        assert code == 0
        assert "clean: no diagnostics" in capsys.readouterr().out

    def test_no_ptc_flags_incomplete_closure(self, stats_file, capsys):
        code = main(["check", "--stats", stats_file, "--query", QUERY, "--no-ptc"])
        out = capsys.readouterr().out
        assert code == 1
        assert "ELS201" in out and "R1.x = R3.z" in out

    def test_contradiction_exits_one(self, stats_file, capsys):
        code = main(
            [
                "check",
                "--stats",
                stats_file,
                "--query",
                "SELECT * FROM R1, R2 WHERE R1.x = R2.y AND R1.x = 5 AND R1.x = 7",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "ELS203" in out

    def test_cartesian_warning_exits_zero(self, stats_file, capsys):
        # ELS207 is a warning; warnings-only runs must not fail the build.
        code = main(
            [
                "check",
                "--stats",
                stats_file,
                "--query",
                "SELECT * FROM R1, R2 WHERE R1.x = 5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ELS207" in out

    def test_bad_stats_path_is_error_exit(self, capsys):
        code = main(["check", "--stats", "/nonexistent.json", "--query", QUERY])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_json_format(self, stats_file, capsys):
        code = main(
            [
                "check",
                "--stats",
                stats_file,
                "--query",
                QUERY,
                "--no-ptc",
                "--format",
                "json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["counts"]["error"] >= 1


class TestStandaloneLintEntryPoint:
    """The dedicated ``repro-els-lint`` console script shares the contract."""

    def test_clean_exit(self, tmp_path, capsys):
        from repro.lint.cli import main as lint_main

        path = tmp_path / "clean.py"
        path.write_text("X = 1\n")
        assert lint_main([str(path)]) == 0

    def test_usage_error_exit(self, capsys):
        from repro.lint.cli import main as lint_main

        assert lint_main(["/nonexistent/tree"]) == 2
        assert "usage error:" in capsys.readouterr().err

    def test_findings_exit(self, tmp_path, capsys):
        from repro.lint.cli import main as lint_main

        path = tmp_path / "dirty.py"
        path.write_text("try:\n    x = 1\nexcept:\n    pass\n")
        assert lint_main([str(path)]) == 1
        assert "ELS106" in capsys.readouterr().out


class TestNewEnumerators:
    @pytest.mark.parametrize("enumerator", ["dp-bushy", "random", "annealing"])
    def test_optimize_with_enumerator(self, stats_file, capsys, enumerator):
        code = main(
            [
                "optimize",
                "--stats",
                stats_file,
                "--query",
                QUERY,
                "--enumerator",
                enumerator,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "join order:" in out

    def test_frequency_stats_flag_accepted(self, stats_file, capsys):
        code = main(
            [
                "estimate",
                "--stats",
                stats_file,
                "--query",
                QUERY,
                "--frequency-stats",
            ]
        )
        assert code == 0
        # Stats-JSON files carry no MCVs/histograms, so the flag is inert.
        assert "final estimate: 1000" in capsys.readouterr().out
