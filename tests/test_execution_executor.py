"""Executor tests: plan trees against stored data, end to end."""

import pytest

from repro.catalog import TableSchema
from repro.execution import Executor
from repro.optimizer import JoinMethod, JoinPlan, ScanPlan
from repro.sql import Op, Projection, join_predicate, local_predicate
from repro.sql.predicates import ColumnRef
from repro.storage import Database


def make_database():
    db = Database()
    db.load_columns(TableSchema.of("R", "x", "y"), {"x": [1, 2, 3, 4], "y": [10, 20, 30, 40]})
    db.load_columns(TableSchema.of("S", "x", "z"), {"x": [2, 3, 3, 9], "z": [5, 6, 7, 8]})
    return db


def scan_plan(relation, base=None, predicates=(), rows=0.0):
    return ScanPlan(
        relation=relation,
        base_table=base or relation,
        local_predicates=tuple(predicates),
        estimated_rows=rows,
        estimated_cost=0.0,
        row_width=8,
    )


def join_plan(left, right, predicates, method=JoinMethod.HASH):
    return JoinPlan(
        left=left,
        right=right,
        method=method,
        predicates=tuple(predicates),
        estimated_rows=0.0,
        estimated_cost=0.0,
        row_width=left.row_width + right.row_width,
    )


class TestScansAndFilters:
    def test_plain_scan(self):
        result = Executor(make_database()).execute(scan_plan("R"))
        assert result.count == 4
        assert result.columns == (ColumnRef("R", "x"), ColumnRef("R", "y"))

    def test_scan_with_filter(self):
        plan = scan_plan("R", predicates=[local_predicate("R", "x", Op.GT, 2)])
        result = Executor(make_database()).execute(plan)
        assert result.count == 2

    def test_alias_scan(self):
        plan = scan_plan("r2", base="R")
        result = Executor(make_database()).execute(plan)
        assert result.count == 4
        assert result.columns[0] == ColumnRef("r2", "x")


class TestJoins:
    @pytest.mark.parametrize(
        "method", [JoinMethod.NESTED_LOOPS, JoinMethod.SORT_MERGE, JoinMethod.HASH]
    )
    def test_two_way_join_counts(self, method):
        plan = join_plan(
            scan_plan("R"),
            scan_plan("S"),
            [join_predicate("R", "x", "S", "x")],
            method,
        )
        result = Executor(make_database()).execute(plan)
        # R.x = 2 matches one S row; R.x = 3 matches two.
        assert result.count == 3

    def test_join_output_layout(self):
        plan = join_plan(
            scan_plan("R"), scan_plan("S"), [join_predicate("R", "x", "S", "x")]
        )
        result = Executor(make_database()).execute(plan)
        assert result.columns == (
            ColumnRef("R", "x"),
            ColumnRef("R", "y"),
            ColumnRef("S", "x"),
            ColumnRef("S", "z"),
        )

    def test_self_join_via_aliases(self):
        plan = join_plan(
            scan_plan("a", base="R"),
            scan_plan("b", base="R"),
            [join_predicate("a", "x", "b", "x")],
        )
        result = Executor(make_database()).execute(plan)
        assert result.count == 4  # keys join 1-1 with themselves

    def test_cartesian_nested_loops(self):
        plan = join_plan(
            scan_plan("R"), scan_plan("S"), [], JoinMethod.NESTED_LOOPS
        )
        result = Executor(make_database()).execute(plan)
        assert result.count == 16

    def test_three_way_left_deep(self):
        db = make_database()
        db.load_columns(TableSchema.of("T", "z"), {"z": [5, 6]})
        inner = join_plan(
            scan_plan("R"), scan_plan("S"), [join_predicate("R", "x", "S", "x")]
        )
        plan = join_plan(inner, scan_plan("T"), [join_predicate("S", "z", "T", "z")])
        result = Executor(db).execute(plan)
        # Matches: (2: z=5 in T), (3: z=6 in T), (3: z=7 not in T).
        assert result.count == 2


class TestProjectionHandling:
    def test_count_star(self):
        result = Executor(make_database()).execute(
            scan_plan("R"), Projection(count_star=True)
        )
        assert result.count == 4
        assert result.rows == []  # rows dropped for COUNT(*)

    def test_column_projection(self):
        result = Executor(make_database()).execute(
            scan_plan("R"), Projection(columns=(ColumnRef("R", "y"),))
        )
        assert result.rows == [(10,), (20,), (30,), (40,)]

    def test_count_helper(self):
        result = Executor(make_database()).count(scan_plan("S"))
        assert result.count == 4


class TestMetrics:
    def test_wall_time_recorded(self):
        result = Executor(make_database()).execute(scan_plan("R"))
        assert result.wall_seconds >= 0.0

    def test_operator_stats_present(self):
        plan = join_plan(
            scan_plan("R"), scan_plan("S"), [join_predicate("R", "x", "S", "x")]
        )
        result = Executor(make_database()).execute(plan)
        labels = [op.label for op in result.metrics.operators]
        assert "scan(R)" in labels and "scan(S)" in labels
        assert any("join" in label for label in labels)

    def test_by_label_disambiguates(self):
        plan = join_plan(
            scan_plan("a", base="R"),
            scan_plan("b", base="R"),
            [join_predicate("a", "x", "b", "x")],
        )
        result = Executor(make_database()).execute(plan)
        by_label = result.metrics.by_label()
        assert "scan(a)" in by_label and "scan(b)" in by_label

    def test_summary_renders(self):
        result = Executor(make_database()).execute(scan_plan("R"))
        assert "wall:" in result.metrics.summary()
