"""ANALYZE collector tests: exact statistics from stored data."""

import pytest

from repro.catalog import HistogramKind, TableSchema, collect_column_stats, collect_table_stats
from repro.catalog.histogram import EquiDepthHistogram, EquiWidthHistogram
from repro.catalog.schema import ColumnDef, ColumnType
from repro.storage import Table


def make_table(values, name="R", column="x"):
    table = Table(TableSchema.of(name, column))
    table.extend([(v,) for v in values])
    return table


class TestColumnCollection:
    def test_exact_distinct_count(self):
        table = make_table([1, 2, 2, 3, 3, 3])
        stats = collect_column_stats(table, "x")
        assert stats.distinct == 3

    def test_min_max(self):
        stats = collect_column_stats(make_table([5, 1, 9]), "x")
        assert stats.low == 1 and stats.high == 9

    def test_equi_depth_default(self):
        stats = collect_column_stats(make_table(list(range(100))), "x")
        assert isinstance(stats.histogram, EquiDepthHistogram)

    def test_equi_width_option(self):
        stats = collect_column_stats(
            make_table(list(range(100))), "x", histogram=HistogramKind.EQUI_WIDTH
        )
        assert isinstance(stats.histogram, EquiWidthHistogram)

    def test_no_histogram_option(self):
        stats = collect_column_stats(
            make_table([1, 2]), "x", histogram=HistogramKind.NONE
        )
        assert stats.histogram is None

    def test_mcv_collection(self):
        stats = collect_column_stats(make_table([1, 1, 1, 2]), "x", mcv_k=1)
        assert stats.mcv is not None
        assert stats.mcv.equality_fraction(1) == 0.75

    def test_mcv_disabled_by_default(self):
        stats = collect_column_stats(make_table([1, 1]), "x")
        assert stats.mcv is None

    def test_string_column_has_no_range_or_histogram(self):
        table = Table(TableSchema.of("R", ColumnDef("s", ColumnType.STR)))
        table.extend([("a",), ("b",), ("a",)])
        stats = collect_column_stats(table, "s")
        assert stats.distinct == 2
        assert stats.low is None and stats.histogram is None

    def test_empty_table(self):
        stats = collect_column_stats(make_table([]), "x")
        assert stats.distinct == 0
        assert stats.histogram is None


class TestTableCollection:
    def test_all_columns_collected(self):
        table = Table(TableSchema.of("R", "a", "b"))
        table.extend([(1, 10), (2, 10)])
        stats = collect_table_stats(table)
        assert stats.row_count == 2
        assert stats.column("a").distinct == 2
        assert stats.column("b").distinct == 1

    def test_restricted_columns(self):
        table = Table(TableSchema.of("R", "a", "b"))
        table.extend([(1, 10)])
        stats = collect_table_stats(table, columns=["a"])
        assert stats.has_column("a") and not stats.has_column("b")

    def test_collected_stats_satisfy_invariants(self):
        # distinct <= row_count must hold or TableStats construction fails.
        table = make_table([7] * 50)
        stats = collect_table_stats(table)
        assert stats.column("x").distinct == 1
        assert stats.row_count == 50
