"""Join selectivity and combination-rule tests."""

import pytest

from repro.core.config import ELS, EstimatorConfig, SelectivityRule
from repro.core.rules import (
    combine_all,
    combine_class_selectivities,
    derive_representative,
    join_selectivity,
)
from repro.errors import EstimationError


class TestJoinSelectivity:
    def test_equation_2(self):
        """S_J = 1 / max(d1, d2)."""
        assert join_selectivity(10, 100) == pytest.approx(0.01)
        assert join_selectivity(100, 10) == pytest.approx(0.01)

    def test_example_1b_selectivities(self):
        assert join_selectivity(10, 100) == pytest.approx(0.01)  # J1
        assert join_selectivity(100, 1000) == pytest.approx(0.001)  # J2
        assert join_selectivity(10, 1000) == pytest.approx(0.001)  # J3

    def test_zero_cardinality_gives_zero(self):
        assert join_selectivity(0, 0) == 0.0

    def test_fractional_cardinalities(self):
        assert join_selectivity(0.5, 2.0) == pytest.approx(0.5)

    def test_negative_rejected(self):
        with pytest.raises(EstimationError):
            join_selectivity(-1, 5)


class TestCombineClass:
    SELECTIVITIES = [0.01, 0.001, 0.005]

    def test_multiplicative(self):
        result = combine_class_selectivities(
            self.SELECTIVITIES, SelectivityRule.MULTIPLICATIVE
        )
        assert result == pytest.approx(0.01 * 0.001 * 0.005)

    def test_smallest(self):
        assert combine_class_selectivities(
            self.SELECTIVITIES, SelectivityRule.SMALLEST
        ) == pytest.approx(0.001)

    def test_largest(self):
        assert combine_class_selectivities(
            self.SELECTIVITIES, SelectivityRule.LARGEST
        ) == pytest.approx(0.01)

    def test_representative_uses_given_value(self):
        assert (
            combine_class_selectivities(
                self.SELECTIVITIES, SelectivityRule.REPRESENTATIVE, representative=0.5
            )
            == 0.5
        )

    def test_representative_requires_value(self):
        with pytest.raises(EstimationError):
            combine_class_selectivities(
                self.SELECTIVITIES, SelectivityRule.REPRESENTATIVE
            )

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            combine_class_selectivities([], SelectivityRule.LARGEST)

    def test_single_selectivity_rule_independent(self):
        for rule in (
            SelectivityRule.MULTIPLICATIVE,
            SelectivityRule.SMALLEST,
            SelectivityRule.LARGEST,
        ):
            assert combine_class_selectivities([0.25], rule) == 0.25

    def test_rule_ordering_invariant(self):
        """Within one class: M <= SS <= LS always (selectivities <= 1)."""
        values = [0.3, 0.01, 0.2]
        m = combine_class_selectivities(values, SelectivityRule.MULTIPLICATIVE)
        ss = combine_class_selectivities(values, SelectivityRule.SMALLEST)
        ls = combine_class_selectivities(values, SelectivityRule.LARGEST)
        assert m <= ss <= ls


class TestCombineAll:
    def test_classes_multiply(self):
        config = EstimatorConfig(rule=SelectivityRule.LARGEST)
        result = combine_all({"c1": [0.1, 0.2], "c2": [0.5]}, config)
        assert result == pytest.approx(0.2 * 0.5)

    def test_representative_from_config_constant(self):
        config = EstimatorConfig(
            rule=SelectivityRule.REPRESENTATIVE, representative_selectivity=0.25
        )
        result = combine_all({"c1": [0.1, 0.2]}, config)
        assert result == 0.25

    def test_representative_mapping_overrides(self):
        config = EstimatorConfig(rule=SelectivityRule.REPRESENTATIVE)
        result = combine_all({"c1": [0.1]}, config, representatives={"c1": 0.4})
        assert result == 0.4

    def test_empty_mapping_is_identity(self):
        assert combine_all({}, ELS) == 1.0


class TestDeriveRepresentative:
    def test_smallest_and_largest(self):
        assert derive_representative([0.1, 0.5], "smallest") == 0.1
        assert derive_representative([0.1, 0.5], "largest") == 0.5

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            derive_representative([], "smallest")

    def test_unknown_choice_rejected(self):
        with pytest.raises(EstimationError):
            derive_representative([0.1], "median")


class TestConfig:
    def test_paper_presets(self):
        from repro.core.config import SM, SSS

        assert ELS.rule is SelectivityRule.LARGEST
        assert ELS.fold_local_into_columns and ELS.handle_single_table_jequiv
        assert SM.rule is SelectivityRule.MULTIPLICATIVE
        assert not SM.fold_local_into_columns
        assert SSS.rule is SelectivityRule.SMALLEST

    def test_but_creates_modified_copy(self):
        ablated = ELS.but(use_urn_model=False)
        assert not ablated.use_urn_model
        assert ELS.use_urn_model  # original untouched

    def test_invalid_representative_choice(self):
        with pytest.raises(ValueError):
            EstimatorConfig(representative_choice="mean")

    def test_invalid_representative_selectivity(self):
        with pytest.raises(ValueError):
            EstimatorConfig(representative_selectivity=0.0)
        with pytest.raises(ValueError):
            EstimatorConfig(representative_selectivity=1.5)

    def test_invalid_default_join_selectivity(self):
        with pytest.raises(ValueError):
            EstimatorConfig(default_join_selectivity=0.0)
