"""Cost model tests: page math and method cost relationships."""

import pytest

from repro.optimizer import CostModel


class TestPages:
    def test_zero_rows_zero_pages(self):
        assert CostModel().pages(0, 8) == 0.0

    def test_ceiling(self):
        model = CostModel(page_size=4096)
        assert model.pages(1, 8) == 1.0
        assert model.pages(512, 8) == 1.0
        assert model.pages(513, 8) == 2.0

    def test_wide_rows_take_more_pages(self):
        model = CostModel(page_size=4096)
        assert model.pages(1000, 40) > model.pages(1000, 8)


class TestScanCost:
    def test_scan_cost_scales_with_rows(self):
        model = CostModel()
        assert model.scan_cost(10**6, 8) > model.scan_cost(10**3, 8)

    def test_predicates_add_cpu(self):
        model = CostModel()
        assert model.scan_cost(1000, 8, predicates=3) > model.scan_cost(
            1000, 8, predicates=1
        )


class TestJoinCosts:
    MODEL = CostModel(buffer_pages=16)

    def test_nested_loops_small_inner_cheap(self):
        small = self.MODEL.nested_loops_cost(100, 8, 100, 8)
        large = self.MODEL.nested_loops_cost(100, 8, 10**6, 8)
        assert large > small * 10

    def test_nested_loops_buffer_threshold(self):
        """An inner that fits in the buffer is read once regardless of the
        outer size; one that does not is re-read per outer block."""
        fits = self.MODEL.nested_loops_cost(10**5, 8, 1000, 8)
        spills = self.MODEL.nested_loops_cost(10**5, 8, 10**5, 8)
        assert spills > fits

    def test_sort_merge_beats_nl_for_two_large_inputs(self):
        n = 10**5
        nl = self.MODEL.nested_loops_cost(n, 8, n, 8)
        sm = self.MODEL.sort_merge_cost(n, 8, n, 8)
        assert sm < nl

    def test_nl_beats_sort_merge_for_tiny_outer(self):
        nl = self.MODEL.nested_loops_cost(10, 8, 100, 8)
        sm = self.MODEL.sort_merge_cost(10, 8, 100, 8)
        assert nl < sm

    def test_hash_cheapest_for_large_equijoins(self):
        n = 10**5
        hj = self.MODEL.hash_cost(n, 8, n, 8)
        sm = self.MODEL.sort_merge_cost(n, 8, n, 8)
        assert hj < sm

    def test_costs_nonnegative_and_monotone(self):
        model = CostModel()
        for fn in (model.nested_loops_cost, model.sort_merge_cost, model.hash_cost):
            assert fn(0, 8, 0, 8) >= 0.0
            assert fn(1000, 8, 1000, 8) <= fn(2000, 8, 2000, 8)


class TestOutputCost:
    def test_materialization_charged_by_default(self):
        model = CostModel()
        assert model.output_cost(10**5, 16) > 0.0

    def test_materialization_can_be_disabled(self):
        model = CostModel(materialize_output=False)
        assert model.output_cost(10**5, 16) == 0.0

    def test_empty_output_free_io(self):
        model = CostModel()
        assert model.output_cost(0, 16) == 0.0
