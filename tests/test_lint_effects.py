"""Tests for the ELS4xx effect-and-determinism layer.

Covers the ``effect=`` directive parsing (ELS400 positive/negative),
every diagnostic code ELS401-ELS407 with positive *and* negative
snippets, bottom-up effect-summary propagation, the suppression
interplay with ``# els: noqa``, and the engine integration
(``effects=`` flag of ``lint_source``/``lint_paths``, ``jobs=``
determinism).
"""

import textwrap

import pytest

from repro.lint.dataflow.annotations import parse_directives
from repro.lint.effects import (
    EFFECT_CODES,
    analyze_source,
    is_cache_attr,
    provably_mutable,
)
from repro.lint.engine import lint_paths, lint_source


def codes(source):
    return [d.code for d in analyze_source(textwrap.dedent(source))]


def findings(source):
    return analyze_source(textwrap.dedent(source))


class TestEffectDirectiveParsing:
    def test_valid_effect_directive(self):
        directives, malformed = parse_directives(
            "def f():  # els: effect=pure\n    pass\n"
        )
        assert malformed == []
        assert directives[0].kind == "effect"
        assert directives[0].effect == "pure"

    def test_aliases_canonicalized(self):
        directives, _ = parse_directives("def f():  # els: effect=mutating\n    pass\n")
        assert directives[0].effect == "mutates"
        directives, _ = parse_directives(
            "def f():  # els: effect=nondeterministic\n    pass\n"
        )
        assert directives[0].effect == "nondet"

    def test_unknown_effect_is_malformed_with_effect_family(self):
        _, malformed = parse_directives("def f():  # els: effect=bogus\n    pass\n")
        assert len(malformed) == 1
        assert malformed[0].family == "effect"

    def test_unknown_family_stays_general(self):
        _, malformed = parse_directives("x = 1  # els: wibble=3\n")
        assert malformed[0].family == "general"
        assert "effect=..." in malformed[0].reason


class TestELS400:
    def test_malformed_effect_directive_fires(self):
        assert "ELS400" in codes(
            """
            def f():  # els: effect=sometimes
                pass
            """
        )

    def test_misplaced_effect_directive_fires(self):
        assert "ELS400" in codes(
            """
            def f():
                x = 1  # els: effect=pure
                return x
            """
        )

    def test_effect_on_def_line_is_clean(self):
        assert codes(
            """
            def f():  # els: effect=pure
                return 1
            """
        ) == []

    def test_malformed_quantity_not_reported_here(self):
        # The quantity family belongs to ELS300 (dataflow layer).
        assert codes(
            """
            def f():  # els: quantity=bogus
                return 1
            """
        ) == []


CACHE_CLASS = """
class Cache:
    def __init__(self):
        self._cache = {}

    def put(self, key, value):
        self._cache[key] = value

    def get(self, key):
        return self._cache.get(key)
"""


class TestELS401:
    def test_mutating_cached_value_fires(self):
        assert "ELS401" in codes(
            """
            class Cache:
                def __init__(self):
                    self._cache = {}
                def corrupt(self, key):
                    value = self._cache[key]
                    value.append(1)
            """
        )

    def test_mutating_via_get_alias_fires(self):
        assert "ELS401" in codes(
            """
            class Cache:
                def __init__(self):
                    self._cache = {}
                def corrupt(self, key):
                    self._cache.get(key).update({"a": 1})
            """
        )

    def test_cache_management_at_depth_zero_is_clean(self):
        # Filling, evicting, and clearing the container itself is what a
        # cache does; only *interior* mutation is corruption.
        assert codes(
            """
            class Cache:
                def __init__(self):
                    self._cache = {}
                def put(self, key, value):
                    self._cache[key] = value
                def evict(self, key):
                    self._cache.pop(key, None)
                def reset(self):
                    self._cache.clear()
            """
        ) == []

    def test_interprocedural_mutation_of_cached_value_fires(self):
        assert "ELS401" in codes(
            """
            def grow(items):
                items.append(1)

            class Cache:
                def __init__(self):
                    self._cache = {}
                def corrupt(self, key):
                    value = self._cache[key]
                    grow(value)
            """
        )

    def test_fresh_copy_breaks_the_alias_chain(self):
        assert codes(
            """
            class Cache:
                def __init__(self):
                    self._cache = {}
                def safe(self, key):
                    value = list(self._cache[key])
                    value.append(1)
                    return value
            """
        ) == []

    def test_non_cache_attribute_is_clean(self):
        assert codes(
            """
            class Rows:
                def __init__(self):
                    self._rows = []
                def add(self, row):
                    self._rows.append(row)
            """
        ) == []


class TestELS402:
    def test_ambient_rng_in_entry_fires(self):
        assert "ELS402" in codes(
            """
            import random

            def evaluate_workloads(specs):
                return [random.random() for _ in specs]
            """
        )

    def test_ambient_rng_reachable_from_entry_fires(self):
        result = findings(
            """
            import random

            def jitter():
                return random.uniform(0.0, 1.0)

            def run_bench(n):
                return [jitter() for _ in range(n)]
            """
        )
        assert [d.code for d in result] == ["ELS402"]
        assert "reachable from 'run_bench'" in result[0].message

    def test_unseeded_random_constructor_fires(self):
        assert "ELS402" in codes(
            """
            from random import Random

            def evaluate_workloads():
                return Random().random()
            """
        )

    def test_seeded_random_is_clean(self):
        assert codes(
            """
            from random import Random

            def evaluate_workloads(seed):
                rng = Random(seed)
                return rng.random()
            """
        ) == []

    def test_rng_not_reachable_from_entry_is_clean(self):
        assert codes(
            """
            import random

            def scratch_helper():
                return random.random()
            """
        ) == []

    def test_declared_pure_entry_is_trusted(self):
        assert codes(
            """
            import random

            def evaluate_workloads():  # els: effect=pure
                return random.random()
            """
        ) == []


class TestELS403:
    def test_lambda_shipped_to_pool_fires(self):
        assert "ELS403" in codes(
            """
            import multiprocessing

            def run(items):
                with multiprocessing.Pool(4) as pool:
                    return pool.map(lambda x: x + 1, items)
            """
        )

    def test_nested_function_shipped_fires(self):
        assert "ELS403" in codes(
            """
            from concurrent.futures import ProcessPoolExecutor

            def run(items):
                def work(x):
                    return x + 1
                pool = ProcessPoolExecutor()
                return pool.submit(work, items)
            """
        )

    def test_module_global_mutable_arg_fires(self):
        assert "ELS403" in codes(
            """
            import multiprocessing

            SHARED = {}

            def work(x):
                return x

            def run():
                with multiprocessing.Pool() as pool:
                    return pool.map(work, SHARED)
            """
        )

    def test_module_level_function_and_local_payload_is_clean(self):
        assert codes(
            """
            import multiprocessing

            def work(x):
                return x + 1

            def run(items):
                payloads = [(i, x) for i, x in enumerate(items)]
                with multiprocessing.Pool(2) as pool:
                    return pool.map(work, payloads)
            """
        ) == []

    def test_thread_pool_not_flagged(self):
        # Threads share memory; pickling hazards do not apply.
        assert codes(
            """
            from concurrent.futures import ThreadPoolExecutor

            def run(items):
                pool = ThreadPoolExecutor()
                return pool.map(lambda x: x + 1, items)
            """
        ) == []


DIGEST_CLASS_HEADER = """
class Table:
    def __init__(self):
        self._rows = []
        self._digest_cache = None

    def content_digest(self):
        if self._digest_cache is None:
            self._digest_cache = str(self._rows)
        return self._digest_cache
"""


class TestELS404:
    def test_length_preserving_mutation_fires(self):
        assert "ELS404" in codes(
            DIGEST_CLASS_HEADER
            + """
    def sort_rows(self):
        self._rows.sort()
            """
        )

    def test_subscript_store_fires(self):
        assert "ELS404" in codes(
            DIGEST_CLASS_HEADER
            + """
    def patch(self, index, row):
        self._rows[index] = row
            """
        )

    def test_rebind_outside_init_fires(self):
        assert "ELS404" in codes(
            DIGEST_CLASS_HEADER
            + """
    def replace(self, rows):
        self._rows = rows
            """
        )

    def test_append_and_extend_are_clean(self):
        # Length-changing growth is observed by the row-count check the
        # digest cache keys on (append-only storage).
        assert codes(
            DIGEST_CLASS_HEADER
            + """
    def append(self, row):
        self._rows.append(row)

    def extend(self, rows):
        self._rows.extend(rows)
            """
        ) == []

    def test_uncached_digest_is_clean(self):
        # Without memoization there is nothing to go stale.
        assert codes(
            """
            class Database:
                def __init__(self):
                    self._tables = {}
                def fingerprint(self):
                    return str(sorted(self._tables))
                def create_table(self, name, table):
                    self._tables[name] = table
            """
        ) == []


class TestELS405:
    def test_list_of_set_fires(self):
        assert "ELS405" in codes(
            """
            def order(names):
                unique = set(names)
                return list(unique)
            """
        )

    def test_listcomp_over_set_literal_fires(self):
        assert "ELS405" in codes(
            """
            def order():
                return [n for n in {"b", "a"}]
            """
        )

    def test_join_of_set_fires(self):
        assert "ELS405" in codes(
            """
            def label(parts):
                return ",".join(set(parts))
            """
        )

    def test_loop_appending_from_set_fires(self):
        assert "ELS405" in codes(
            """
            def collect(names):
                out = []
                for name in set(names):
                    out.append(name)
                return out
            """
        )

    def test_sorted_set_is_clean(self):
        assert codes(
            """
            def order(names):
                return sorted(set(names))
            """
        ) == []

    def test_aggregating_loop_is_clean(self):
        # Order-independent consumption (sum/max/membership) is fine.
        assert codes(
            """
            def total(values):
                acc = 0
                for value in set(values):
                    acc += value
                return acc
            """
        ) == []


class TestELS406:
    def test_cached_mutable_list_returned_fires(self):
        assert "ELS406" in codes(
            """
            class Table:
                def __init__(self):
                    self._columns_cache = None
                def columns(self):
                    if self._columns_cache is None:
                        self._columns_cache = [[1, 2], [3, 4]]
                    return self._columns_cache
            """
        )

    def test_cached_value_alias_returned_fires(self):
        assert "ELS406" in codes(
            """
            class Blocks:
                def __init__(self):
                    self._block_cache = {}
                def block(self, key):
                    self._block_cache[key] = list(range(3))
                    return self._block_cache[key]
            """
        )

    def test_frozen_tuple_cache_is_clean(self):
        assert codes(
            """
            class Table:
                def __init__(self):
                    self._columns_cache = None
                def columns(self):
                    if self._columns_cache is None:
                        self._columns_cache = tuple(
                            tuple(col) for col in zip((1, 2), (3, 4))
                        )
                    return self._columns_cache
            """
        ) == []

    def test_immutable_cached_values_are_clean(self):
        assert codes(
            """
            class Counts:
                def __init__(self):
                    self._entries = {}
                def put(self, key, count):
                    self._entries[key] = int(count)
                def get(self, key):
                    return self._entries.get(key)
            """
        ) == []

    def test_init_only_stores_are_trusted(self):
        assert codes(
            """
            class Block:
                def __init__(self, columns):
                    self._column_cache = {}
                    for index, values in enumerate(columns):
                        self._column_cache[index] = values
                def column(self, index):
                    return self._column_cache[index]
            """
        ) == []


class TestELS407:
    def test_hash_on_mutable_class_warns(self):
        result = findings(
            """
            class Key:
                def __init__(self, value):
                    self.value = value
                def __hash__(self):
                    return hash(self.value)
                def __eq__(self, other):
                    return self.value == other.value
                def bump(self):
                    self.value += 1
            """
        )
        assert [d.code for d in result] == ["ELS407", "ELS407"]
        assert all(d.severity.value == "warning" for d in result)

    def test_immutable_class_with_eq_is_clean(self):
        assert codes(
            """
            class Key:
                def __init__(self, value):
                    self.value = value
                def __hash__(self):
                    return hash(self.value)
                def __eq__(self, other):
                    return self.value == other.value
            """
        ) == []

    def test_unhashable_marker_is_clean(self):
        assert codes(
            """
            class Record:
                __hash__ = None
                def __init__(self):
                    self.items = []
                def __eq__(self, other):
                    return self.items == other.items
                def add(self, item):
                    self.items.append(item)
            """
        ) == []


class TestSummaryPropagation:
    def test_mutation_propagates_through_two_call_levels(self):
        assert "ELS401" in codes(
            """
            def deep(acc):
                acc.append(1)

            def middle(rows):
                deep(rows)

            class Cache:
                def __init__(self):
                    self._cache = {}
                def corrupt(self, key):
                    value = self._cache[key]
                    middle(value)
            """
        )

    def test_declared_pure_stops_propagation(self):
        assert codes(
            """
            def regenerate(acc):  # els: effect=pure
                acc.append(1)

            class Cache:
                def __init__(self):
                    self._cache = {}
                def safe(self, key):
                    regenerate(self._cache[key])
            """
        ) == []

    def test_declared_mutates_taints_without_body_evidence(self):
        assert "ELS401" in codes(
            """
            def opaque(rows):  # els: effect=mutates
                pass

            class Cache:
                def __init__(self):
                    self._cache = {}
                def corrupt(self, key):
                    opaque(self._cache[key])
            """
        )

    def test_nondet_propagates_through_helpers(self):
        assert "ELS402" in codes(
            """
            import random

            def inner():
                return random.random()

            def outer():
                return inner()

            def evaluate_workloads():
                return outer()
            """
        )


class TestHelpers:
    def test_is_cache_attr(self):
        assert is_cache_attr("_columns_cache")
        assert is_cache_attr("memo_table")
        assert is_cache_attr("_entries")
        assert is_cache_attr("_materialized")
        assert not is_cache_attr("_rows")

    def test_provably_mutable_literals(self):
        import ast

        def expr(text):
            return ast.parse(text, mode="eval").body

        assert provably_mutable(expr("[1, 2]"))
        assert provably_mutable(expr("{'a': 1}"))
        assert provably_mutable(expr("list(x)"))
        assert provably_mutable(expr("([],)"))
        assert not provably_mutable(expr("(1, 2)"))
        assert not provably_mutable(expr("tuple(zip(a, b))"))
        assert not provably_mutable(expr("helper()"))


class TestEngineIntegration:
    SNIPPET = textwrap.dedent(
        """
        class Cache:
            def __init__(self):
                self._cache = {}

            def corrupt(self, key):
                self._cache[key].append(1)
        """
    )

    def test_lint_source_effects_flag(self):
        assert "ELS401" not in [d.code for d in lint_source(self.SNIPPET)]
        assert "ELS401" in [
            d.code for d in lint_source(self.SNIPPET, effects=True)
        ]

    def test_noqa_suppresses_effect_finding(self):
        suppressed = self.SNIPPET.replace(
            "self._cache[key].append(1)",
            "self._cache[key].append(1)  # els: noqa[ELS401]",
        )
        result = lint_source(suppressed, effects=True)
        assert "ELS401" not in [d.code for d in result]
        assert "ELS199" not in [d.code for d in result]

    def test_test_files_are_exempt(self):
        result = lint_source(self.SNIPPET, path="test_cache.py", effects=True)
        assert "ELS401" not in [d.code for d in result]

    def test_lint_paths_jobs_output_is_identical(self, tmp_path):
        (tmp_path / "a.py").write_text(self.SNIPPET)
        (tmp_path / "b.py").write_text("import random\n\ndef bench():\n    return random.random()\n")
        serial = lint_paths([str(tmp_path)], effects=True, jobs=1)
        parallel = lint_paths([str(tmp_path)], effects=True, jobs=4)
        assert serial == parallel
        assert {d.code for d in serial} >= {"ELS401", "ELS402"}

    def test_jobs_must_be_nonnegative(self, tmp_path):
        from repro.errors import LintError

        (tmp_path / "a.py").write_text("x = 1\n")
        with pytest.raises(LintError):
            lint_paths([str(tmp_path)], jobs=-1)

    def test_jobs_zero_means_cpu_count(self, tmp_path):
        (tmp_path / "a.py").write_text(self.SNIPPET)
        auto = lint_paths([str(tmp_path)], effects=True, jobs=0)
        serial = lint_paths([str(tmp_path)], effects=True, jobs=1)
        assert auto == serial

    def test_every_code_has_metadata(self):
        from repro.lint.render import _rule_metadata

        for code in EFFECT_CODES:
            descriptor = _rule_metadata(code)
            assert descriptor["id"] == code
            assert "shortDescription" in descriptor
