"""Table spec and database builder tests."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import ColumnSpec, Distribution, TableSpec, build_database
from repro.workloads.generator import generate_columns


class TestTableSpec:
    def test_uniform_shortcut(self):
        spec = TableSpec.uniform("R", 100, {"x": 10, "y": 5})
        assert spec.rows == 100
        assert spec.columns["x"].distinct == 10
        assert spec.columns["x"].distribution is Distribution.UNIFORM

    def test_negative_rows_rejected(self):
        with pytest.raises(WorkloadError):
            TableSpec("R", -5, {"x": ColumnSpec(1)})

    def test_no_columns_rejected(self):
        with pytest.raises(WorkloadError):
            TableSpec("R", 5, {})


class TestGenerateColumns:
    def test_all_columns_generated(self):
        spec = TableSpec(
            "R",
            500,
            {
                "u": ColumnSpec(distinct=50),
                "z": ColumnSpec(distinct=20, distribution=Distribution.ZIPF, skew=1.2),
            },
        )
        columns = generate_columns(spec, np.random.default_rng(0))
        assert len(columns["u"]) == 500 and len(columns["z"]) == 500
        assert len(set(columns["u"])) == 50
        assert len(set(columns["z"])) == 20


class TestBuildDatabase:
    def test_loads_and_analyzes(self):
        specs = [
            TableSpec.uniform("A", 200, {"x": 20}),
            TableSpec.uniform("B", 300, {"y": 30}),
        ]
        db = build_database(specs, seed=1)
        assert db.true_count("A") == 200
        assert db.catalog.stats("A").row_count == 200
        assert db.catalog.column_stats("A", "x").distinct == 20
        assert db.catalog.column_stats("B", "y").distinct == 30

    def test_analyze_can_be_skipped(self):
        db = build_database([TableSpec.uniform("A", 10, {"x": 2})], analyze=False)
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            db.catalog.stats("A")

    def test_deterministic_under_seed(self):
        specs = [TableSpec.uniform("A", 100, {"x": 10})]
        a = build_database(specs, seed=9).table("A").rows()
        b = build_database(specs, seed=9).table("A").rows()
        assert a == b

    def test_different_seeds_differ(self):
        specs = [TableSpec.uniform("A", 100, {"x": 10})]
        a = build_database(specs, seed=1).table("A").rows()
        b = build_database(specs, seed=2).table("A").rows()
        assert a != b

    def test_mcv_option_flows_through(self):
        db = build_database(
            [TableSpec.uniform("A", 100, {"x": 4})], seed=0, mcv_k=4
        )
        stats = db.catalog.column_stats("A", "x")
        assert stats.mcv is not None
        assert stats.mcv.covered_fraction == pytest.approx(1.0)


class TestPaperSpecs:
    def test_smbg_statistics_exact(self):
        from repro.workloads import load_smbg_database

        db = load_smbg_database(scale=0.05, seed=3)
        stats = db.catalog
        assert stats.stats("S").row_count == 50
        assert stats.column_stats("S", "s").distinct == 50
        assert stats.stats("G").row_count == 5000
        assert stats.column_stats("G", "g").distinct == 5000

    def test_smbg_true_count_is_selection_size(self):
        """After s < t, every join subset has exactly |sigma(S)| rows."""
        from repro.analysis import true_join_size
        from repro.workloads import load_smbg_database, smbg_query

        db = load_smbg_database(scale=0.05, seed=3)
        query = smbg_query(threshold=10)  # s < 10 over keys 1..50 -> 9 rows
        assert true_join_size(query, db) == 9

    def test_scaled_catalog(self):
        from repro.workloads import smbg_catalog

        catalog = smbg_catalog(scale=0.1)
        assert catalog.stats("S").row_count == 100
        assert catalog.stats("G").row_count == 10000
