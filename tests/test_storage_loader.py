"""CSV and statistics-JSON loader tests."""

import json

import pytest

from repro.catalog import Catalog, ColumnType
from repro.errors import StorageError
from repro.storage import Database
from repro.storage.loader import (
    dump_stats_json,
    infer_column_type,
    load_csv,
    load_stats_json,
)


class TestTypeInference:
    def test_ints(self):
        assert infer_column_type(["1", "2", "-3"]) is ColumnType.INT

    def test_floats(self):
        assert infer_column_type(["1.5", "2"]) is ColumnType.FLOAT

    def test_strings(self):
        assert infer_column_type(["a", "1"]) is ColumnType.STR

    def test_empty_cells_ignored(self):
        assert infer_column_type(["", "2"]) is ColumnType.INT

    def test_all_empty_is_str(self):
        assert infer_column_type(["", ""]) is ColumnType.STR


class TestLoadCsv:
    def write(self, tmp_path, text, name="data.csv"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_basic_load(self, tmp_path):
        path = self.write(tmp_path, "id,name,score\n1,alice,3.5\n2,bob,4.0\n")
        db = Database()
        table = load_csv(db, "people", path)
        assert table.row_count == 2
        assert table.schema.column("id").type is ColumnType.INT
        assert table.schema.column("name").type is ColumnType.STR
        assert table.schema.column("score").type is ColumnType.FLOAT
        assert table.rows()[0] == (1, "alice", 3.5)

    def test_analyze_after_load(self, tmp_path):
        path = self.write(tmp_path, "x\n1\n1\n2\n")
        db = Database()
        load_csv(db, "R", path)
        db.analyze()
        assert db.catalog.column_stats("R", "x").distinct == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load_csv(Database(), "R", tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        path = self.write(tmp_path, "")
        with pytest.raises(StorageError):
            load_csv(Database(), "R", path)

    def test_header_only_gives_empty_table(self, tmp_path):
        path = self.write(tmp_path, "a,b\n")
        table = load_csv(Database(), "R", path)
        assert table.row_count == 0

    def test_ragged_row_rejected_with_line_number(self, tmp_path):
        path = self.write(tmp_path, "a,b\n1,2\n3\n")
        with pytest.raises(StorageError) as excinfo:
            load_csv(Database(), "R", path)
        assert ":3:" in str(excinfo.value)

    def test_custom_delimiter(self, tmp_path):
        path = self.write(tmp_path, "a|b\n1|2\n")
        table = load_csv(Database(), "R", path, delimiter="|")
        assert table.rows() == [(1, 2)]

    def test_duplicate_table_rejected(self, tmp_path):
        path = self.write(tmp_path, "a\n1\n")
        db = Database()
        load_csv(db, "R", path)
        with pytest.raises(StorageError):
            load_csv(db, "R", path)


class TestStatsJson:
    def test_roundtrip(self, tmp_path):
        catalog = Catalog.from_stats(
            {"R1": (100, {"x": 10, "a": 100}), "R2": (1000, {"y": 100})}
        )
        path = tmp_path / "stats.json"
        dump_stats_json(catalog, path)
        loaded = load_stats_json(path)
        assert loaded.tables() == ("R1", "R2")
        assert loaded.stats("R1").row_count == 100
        assert loaded.column_stats("R2", "y").distinct == 100

    def test_paper_example_file(self, tmp_path):
        path = tmp_path / "example1b.json"
        path.write_text(
            json.dumps(
                {
                    "R1": {"rows": 100, "columns": {"x": 10}},
                    "R2": {"rows": 1000, "columns": {"y": 100}},
                    "R3": {"rows": 1000, "columns": {"z": 1000}},
                }
            )
        )
        catalog = load_stats_json(path)
        from repro.core import ELS, JoinSizeEstimator
        from repro.sql import parse_query

        query = parse_query(
            "SELECT * FROM R1, R2, R3 WHERE R1.x = R2.y AND R2.y = R3.z"
        )
        assert JoinSizeEstimator(query, catalog, ELS).estimate(
            ["R2", "R3", "R1"]
        ) == pytest.approx(1000.0)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load_stats_json(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(StorageError):
            load_stats_json(path)

    @pytest.mark.parametrize(
        "document",
        [
            "[]",
            '{"R": {"rows": 5}}',
            '{"R": {"columns": {"x": 1}}}',
            '{"R": {"rows": 5, "columns": {}}}',
        ],
    )
    def test_malformed_documents(self, tmp_path, document):
        path = tmp_path / "bad.json"
        path.write_text(document)
        with pytest.raises(StorageError):
            load_stats_json(path)
