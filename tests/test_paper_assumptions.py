"""Empirical validation of the paper's Section 2 assumptions.

The analytic machinery rests on three assumptions — independence,
uniformity of join-column values, and containment — plus Rosenthal's note
[12] that Equation 1 survives when uniformity is weakened to *expected*
uniformity on just one side.  These tests generate data realizing (or
deliberately violating) each assumption and check the formulas against
executed joins.
"""

import numpy as np
import pytest

from repro.core import two_way_join_size
from repro.core.skew import exact_join_size
from repro.workloads import uniform_column, zipf_column


def frequencies(values):
    result = {}
    for v in values:
        result[v] = result.get(v, 0) + 1
    return result


def executed_join_size(left_values, right_values):
    return exact_join_size(frequencies(left_values), frequencies(right_values))


class TestEquation1UnderTheAssumptions:
    """Uniform + containment data joins at exactly Equation 1's size."""

    @pytest.mark.parametrize(
        "left_rows,left_d,right_rows,right_d",
        [
            (1000, 100, 1000, 1000),  # Example 1b's R2 >< R3
            (100, 10, 1000, 100),  # Example 1b's R1 >< R2
            (500, 50, 600, 200),
            (100, 100, 100, 100),  # key-key
            (1000, 1, 1000, 10),  # constant column
        ],
    )
    def test_exact_when_divisible(self, left_rows, left_d, right_rows, right_d):
        rng = np.random.default_rng(1)
        left = uniform_column(left_rows, left_d, rng)
        right = uniform_column(right_rows, right_d, rng)
        expected = two_way_join_size(left_rows, left_d, right_rows, right_d)
        actual = executed_join_size(left, right)
        # Divisible rows/distinct and nested domains -> exact equality.
        assert actual == pytest.approx(expected, rel=0.02)

    def test_containment_violation_overestimates(self):
        """Disjoint domains: Equation 1 predicts rows, the truth is zero."""
        rng = np.random.default_rng(2)
        left = uniform_column(1000, 100, rng, low=1)
        right = uniform_column(1000, 100, rng, low=10_000)
        predicted = two_way_join_size(1000, 100, 1000, 100)
        assert predicted == pytest.approx(10_000.0)
        assert executed_join_size(left, right) == 0


class TestRosenthalRelaxation:
    """[12]: Equation 1 holds in expectation when only ONE side is
    uniform.  We skew one side heavily and keep the other uniform over the
    same domain; the executed size stays at Equation 1's prediction."""

    @pytest.mark.parametrize("skew", [0.5, 1.0, 1.5])
    def test_one_sided_skew_preserves_equation_1(self, skew):
        rng = np.random.default_rng(3)
        domain = 200
        left = zipf_column(20_000, domain, skew, rng)  # skewed side
        right = uniform_column(10_000, domain, rng)  # uniform side
        predicted = two_way_join_size(20_000, domain, 10_000, domain)
        actual = executed_join_size(left, right)
        # Uniform side: every value has exactly rows/d copies, so the sum
        # sum_v f_L(v) * (rows_R / d) = rows_L * rows_R / d exactly.
        assert actual == pytest.approx(predicted, rel=0.01)

    def test_two_sided_skew_breaks_equation_1(self):
        """With BOTH sides Zipf the correlation of hot values blows the
        estimate: the truth far exceeds Equation 1."""
        rng = np.random.default_rng(4)
        domain = 200
        left = zipf_column(20_000, domain, 1.5, rng)
        right = zipf_column(10_000, domain, 1.5, rng)
        predicted = two_way_join_size(20_000, domain, 10_000, domain)
        actual = executed_join_size(left, right)
        assert actual > predicted * 3


class TestIndependenceAssumption:
    """Independent columns: multi-class selectivities multiply; correlated
    columns violate it measurably."""

    def test_independent_columns_multiply(self):
        rng = np.random.default_rng(5)
        rows = 20_000
        a = uniform_column(rows, 100, rng)
        b = uniform_column(rows, 50, rng)
        # Selection a = 1 AND b = 1: independence predicts rows/(100*50).
        count = sum(1 for x, y in zip(a, b) if x == 1 and y == 1)
        assert count == pytest.approx(rows / 5000, abs=4 * (rows / 5000) ** 0.5 + 3)

    def test_perfectly_correlated_columns_violate(self):
        rng = np.random.default_rng(6)
        rows = 10_000
        a = uniform_column(rows, 100, rng)
        b = list(a)  # perfect correlation
        count = sum(1 for x, y in zip(a, b) if x == 1 and y == 1)
        independent_prediction = rows / (100 * 100)
        assert count > independent_prediction * 50
