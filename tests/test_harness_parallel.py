"""Parallel evaluation harness: determinism across worker counts."""

import random

from repro.analysis import (
    PAPER_ALGORITHMS,
    evaluate_workload,
    evaluate_workloads,
)
from repro.workloads import chain_workload, star_workload


def _workloads():
    return [
        chain_workload(3, random.Random(0)),
        star_workload(2, random.Random(1)),
        chain_workload(4, random.Random(2), local_predicate_probability=0.5),
    ]


def _flatten(results):
    return [
        (r.algorithm, r.estimate, r.actual, r.q_error)
        for records in results
        for r in records
    ]


class TestEvaluateWorkloads:
    def test_serial_matches_parallel(self):
        workloads = _workloads()
        serial = evaluate_workloads(workloads, seed=10, workers=1)
        parallel = evaluate_workloads(workloads, seed=10, workers=3)
        assert _flatten(serial) == _flatten(parallel)

    def test_four_workers_byte_identical_to_serial(self):
        # Stronger than field-wise equality: the full repr of every record
        # (all fields, formatting included) must match byte for byte, so a
        # worker-local RNG or float nondeterminism cannot hide anywhere.
        workloads = _workloads()
        serial = evaluate_workloads(workloads, seed=42, workers=1)
        parallel = evaluate_workloads(workloads, seed=42, workers=4)
        assert repr(serial) == repr(parallel)
        assert repr(serial).encode("utf-8") == repr(parallel).encode("utf-8")

    def test_more_workers_than_workloads(self):
        workloads = _workloads()[:2]
        results = evaluate_workloads(workloads, seed=0, workers=16)
        assert len(results) == 2
        assert all(len(records) == len(PAPER_ALGORITHMS) for records in results)

    def test_result_order_preserves_input_order(self):
        workloads = _workloads()
        results = evaluate_workloads(workloads, seed=5, workers=2)
        for index, (workload, records) in enumerate(zip(workloads, results)):
            expected = evaluate_workload(workload, seed=5 + index)
            # The records at position i belong to workload i, not to
            # whichever worker finished first.
            assert [(r.algorithm, r.estimate, r.actual) for r in records] == [
                (r.algorithm, r.estimate, r.actual) for r in expected
            ]

    def test_workload_i_gets_seed_plus_i(self):
        """The parallel harness must reproduce per-workload serial calls."""
        workloads = _workloads()
        batched = evaluate_workloads(workloads, seed=20, workers=1)
        individual = [
            evaluate_workload(workload, seed=20 + index)
            for index, workload in enumerate(workloads)
        ]
        assert _flatten(batched) == _flatten(individual)

    def test_empty_workload_list(self):
        assert evaluate_workloads([], seed=0, workers=4) == []

    def test_engine_choice_does_not_change_results(self):
        workloads = _workloads()[:1]
        row = evaluate_workloads(workloads, seed=3, engine="row")
        columnar = evaluate_workloads(workloads, seed=3, engine="columnar")
        assert _flatten(row) == _flatten(columnar)

    def test_single_workload_runs_serially(self):
        # workers > 1 with one payload must not pay pool startup; result
        # equality is the observable contract.
        workloads = _workloads()[:1]
        a = evaluate_workloads(workloads, seed=7, workers=8)
        b = evaluate_workloads(workloads, seed=7, workers=1)
        assert _flatten(a) == _flatten(b)
