"""SARIF 2.1.0 renderer tests: golden file + schema validation.

The golden file pins the exact bytes (the CI upload step and the GitHub
code-scanning ingestion parse this shape); the schema test validates both
the fixture rendering and a live run over a seeded-bad snippet against a
vendored structural subset of the official SARIF 2.1.0 JSON schema, so
the check runs offline.
"""

import json
import pathlib

import pytest

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import lint_source
from repro.lint.render import render_sarif

jsonschema = pytest.importorskip("jsonschema")

GOLDEN = pathlib.Path(__file__).parent / "golden"


def sample_diagnostics():
    """One finding per layer — mirrors the text/JSON golden fixture."""
    return [
        Diagnostic(
            code="ELS104",
            message="mutable default argument in 'combine'",
            severity=Severity.ERROR,
            file="src/repro/core/foo.py",
            line=12,
            col=4,
            hint="default to None and construct the container inside the function",
        ),
        Diagnostic(
            code="ELS199",
            message="unused suppression (all codes): no diagnostic on this line",
            severity=Severity.WARNING,
            file="src/repro/core/foo.py",
            line=30,
            col=0,
            hint="remove the stale '# els: noqa' comment",
        ),
        Diagnostic(
            code="ELS201",
            message=(
                "predicate set is not a transitive-closure fixpoint: "
                "R1.x = R3.z is derivable (rule a) but missing"
            ),
            severity=Severity.ERROR,
            context="R1.x = R3.z",
            hint="apply repro.core.closure.close_query before estimating",
        ),
        Diagnostic(
            code="ELS301",
            message=(
                "'selectivity + cardinality' has no dimensionally valid "
                "reading in the estimation algebra"
            ),
            severity=Severity.ERROR,
            file="src/repro/core/foo.py",
            line=44,
            col=11,
        ),
        Diagnostic(
            code="ELS504",
            message=(
                "blocking call time.sleep() while holding lock "
                "'TruthCache._lock' serializes every waiter"
            ),
            severity=Severity.ERROR,
            file="src/repro/core/foo.py",
            line=58,
            col=8,
            hint="move the blocking work outside the critical section",
        ),
        Diagnostic(
            code="ELS603",
            message=(
                "string accumulation 'key += ...' inside a hot loop copies "
                "the whole prefix every iteration (quadratic) "
                "(hot via 'execute')"
            ),
            severity=Severity.ERROR,
            file="src/repro/core/foo.py",
            line=71,
            col=8,
            hint="collect parts in a list and ''.join() once after the loop",
        ),
        Diagnostic(
            code="ELS706",
            message=(
                "layering violation: 'repro.core.foo' (tier 'engine-core') "
                "imports 'repro.execution.engine' (tier 'execution') — "
                "imports must target a strictly lower tier, not a higher tier"
            ),
            severity=Severity.ERROR,
            file="src/repro/core/foo.py",
            line=9,
            col=0,
            hint=(
                "move the import into the function that needs it or "
                "restructure the tiers in layers.toml"
            ),
        ),
    ]


def load_schema():
    return json.loads((GOLDEN / "sarif-2.1.0-subset.schema.json").read_text())


class TestSarifGolden:
    def test_matches_golden_file(self):
        rendered = render_sarif(sample_diagnostics()) + "\n"
        assert rendered == (GOLDEN / "diagnostics.sarif").read_text()

    def test_empty_log_still_has_run_and_tool(self):
        log = json.loads(render_sarif([]))
        assert log["version"] == "2.1.0"
        [run] = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-els-lint"
        assert run["results"] == []


class TestSarifShape:
    def test_levels_map_per_spec(self):
        log = json.loads(render_sarif(sample_diagnostics()))
        levels = [r["level"] for r in log["runs"][0]["results"]]
        assert levels == [
            "error",
            "warning",
            "error",
            "error",
            "error",
            "error",
            "error",
        ]

    def test_rule_index_points_into_rules_array(self):
        log = json.loads(render_sarif(sample_diagnostics()))
        [run] = log["runs"]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_file_findings_carry_one_based_physical_location(self):
        log = json.loads(render_sarif(sample_diagnostics()))
        result = log["runs"][0]["results"][0]
        [location] = result["locations"]
        region = location["physicalLocation"]["region"]
        assert region["startLine"] == 12
        assert region["startColumn"] == 5  # Diagnostic col 4, SARIF is 1-based

    def test_layer2_findings_use_logical_locations(self):
        log = json.loads(render_sarif(sample_diagnostics()))
        result = log["runs"][0]["results"][2]
        [location] = result["locations"]
        [logical] = location["logicalLocations"]
        assert logical["fullyQualifiedName"] == "R1.x = R3.z"

    def test_hint_is_folded_into_the_message(self):
        log = json.loads(render_sarif(sample_diagnostics()))
        message = log["runs"][0]["results"][0]["message"]["text"]
        assert "hint:" in message


class TestSarifSchema:
    def test_fixture_log_validates(self):
        log = json.loads(render_sarif(sample_diagnostics()))
        jsonschema.validate(log, load_schema())

    def test_live_lint_run_validates(self):
        source = (
            "def _estimate(sel_join, n_rows):\n"
            "    return sel_join + n_rows\n"
        )
        diagnostics = lint_source(source, "snippet.py", dataflow=True)
        assert diagnostics, "seeded snippet must produce findings"
        log = json.loads(render_sarif(diagnostics))
        jsonschema.validate(log, load_schema())

    def test_schema_rejects_bad_level(self):
        log = json.loads(render_sarif(sample_diagnostics()))
        log["runs"][0]["results"][0]["level"] = "fatal"
        with pytest.raises(jsonschema.ValidationError):
            jsonschema.validate(log, load_schema())
