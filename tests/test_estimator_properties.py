"""Property-based tests for the estimator's core guarantees.

The central theorem of the paper (Section 7): under the stated assumptions
and with full transitive closure, Rule LS computes, incrementally and for
*every* join order, the closed-form result size of Equation 3.  Hypothesis
checks this over random statistics, together with the M <= SS <= LS
dominance ordering that explains why the baselines underestimate.
"""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog
from repro.core import ELS, SM, SSS, JoinSizeEstimator
from repro.sql import Projection, Query, join_predicate

MAX_TABLES = 5


@st.composite
def chain_statistics(draw, min_tables=2, max_tables=MAX_TABLES):
    """Random (rows, distinct) pairs for a single-class chain query."""
    n = draw(st.integers(min_value=min_tables, max_value=max_tables))
    stats = []
    for _ in range(n):
        rows = draw(st.integers(min_value=1, max_value=10**6))
        distinct = draw(st.integers(min_value=1, max_value=rows))
        stats.append((rows, distinct))
    return stats


def build_chain(stats):
    """Catalog + chain query T1.c = T2.c = ... from (rows, distinct) pairs."""
    catalog = Catalog.from_stats(
        {
            f"T{i}": (rows, {"c": distinct})
            for i, (rows, distinct) in enumerate(stats, start=1)
        }
    )
    names = [f"T{i}" for i in range(1, len(stats) + 1)]
    predicates = [
        join_predicate(names[i], "c", names[i + 1], "c")
        for i in range(len(names) - 1)
    ]
    query = Query.build(names, predicates, Projection(count_star=True))
    return catalog, query


def equation_3(stats):
    """prod(rows) / prod(all distincts except the smallest)."""
    rows = 1.0
    for r, _ in stats:
        rows *= r
    distincts = sorted(d for _, d in stats)
    for d in distincts[1:]:
        rows = rows / d if d > 0 else 0.0
    return rows


class TestRuleLSMatchesClosedForm:
    @given(stats=chain_statistics())
    @settings(max_examples=100, deadline=None)
    def test_els_equals_equation_3_for_every_order(self, stats):
        catalog, query = build_chain(stats)
        estimator = JoinSizeEstimator(query, catalog, ELS)
        expected = equation_3(stats)
        names = list(query.tables)
        for order in itertools.permutations(names):
            estimate = estimator.estimate(list(order))
            assert estimate == pytest.approx(expected, rel=1e-9)

    @given(stats=chain_statistics())
    @settings(max_examples=100, deadline=None)
    def test_closed_form_oracle_agrees(self, stats):
        catalog, query = build_chain(stats)
        estimator = JoinSizeEstimator(query, catalog, ELS)
        assert estimator.closed_form() == pytest.approx(equation_3(stats), rel=1e-9)

    @given(stats=chain_statistics())
    @settings(max_examples=60, deadline=None)
    def test_els_prefix_estimates_match_prefix_closed_form(self, stats):
        catalog, query = build_chain(stats)
        estimator = JoinSizeEstimator(query, catalog, ELS)
        names = list(query.tables)
        result = estimator.estimate_order(names)
        for k in range(2, len(names) + 1):
            prefix_expected = equation_3(stats[:k])
            assert result.steps[k - 1].rows == pytest.approx(
                prefix_expected, rel=1e-9
            )


class TestRuleDominance:
    @given(stats=chain_statistics(min_tables=3))
    @settings(max_examples=100, deadline=None)
    def test_m_le_ss_le_ls(self, stats):
        """Rule M never estimates above Rule SS, which never estimates
        above Rule LS — the paper's underestimation story, universally."""
        catalog, query = build_chain(stats)
        order = list(query.tables)
        m = JoinSizeEstimator(query, catalog, SM).estimate(order)
        ss = JoinSizeEstimator(query, catalog, SSS).estimate(order)
        ls = JoinSizeEstimator(query, catalog, ELS).estimate(order)
        assert m <= ss * (1 + 1e-9)
        assert ss <= ls * (1 + 1e-9)

    @given(stats=chain_statistics(min_tables=3))
    @settings(max_examples=60, deadline=None)
    def test_ls_never_underestimates_equation_3(self, stats):
        """LS is exact, so in particular it never falls below the closed
        form; M and SS never exceed it (single class, chain order)."""
        catalog, query = build_chain(stats)
        order = list(query.tables)
        expected = equation_3(stats)
        assert JoinSizeEstimator(query, catalog, ELS).estimate(
            order
        ) == pytest.approx(expected, rel=1e-9)
        assert (
            JoinSizeEstimator(query, catalog, SM).estimate(order)
            <= expected * (1 + 1e-9)
        )


class TestMultipleClasses:
    @given(
        fact_rows=st.integers(min_value=10, max_value=10**5),
        dims=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=10**4),  # dim rows
                st.integers(min_value=1, max_value=10**4),  # fk distinct
            ),
            min_size=1,
            max_size=4,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_star_query_classes_multiply(self, fact_rows, dims):
        """With one class per dimension, the estimate is the product of
        independent per-class reductions (the independence assumption)."""
        entries = {}
        fact_columns = {}
        predicates = []
        expected = float(fact_rows)
        names = ["F"]
        for i, (dim_rows, fk_distinct) in enumerate(dims, start=1):
            fk_distinct = min(fk_distinct, fact_rows)
            key_distinct = dim_rows  # key column
            fact_columns[f"fk{i}"] = fk_distinct
            entries[f"D{i}"] = (dim_rows, {"k": key_distinct})
            predicates.append(join_predicate("F", f"fk{i}", f"D{i}", "k"))
            names.append(f"D{i}")
            expected *= dim_rows / max(fk_distinct, key_distinct)
        entries["F"] = (fact_rows, fact_columns)
        catalog = Catalog.from_stats(entries)
        query = Query.build(names, predicates, Projection(count_star=True))
        estimate = JoinSizeEstimator(query, catalog, ELS).estimate(names)
        assert estimate == pytest.approx(expected, rel=1e-9)

    @given(stats=chain_statistics(min_tables=3, max_tables=4))
    @settings(max_examples=40, deadline=None)
    def test_clique_phrasing_equals_chain_phrasing(self, stats):
        """Closure makes chain and clique spellings estimate identically."""
        catalog, chain_query = build_chain(stats)
        names = list(chain_query.tables)
        clique_predicates = [
            join_predicate(a, "c", b, "c")
            for a, b in itertools.combinations(names, 2)
        ]
        clique_query = Query.build(names, clique_predicates, Projection(count_star=True))
        chain_estimate = JoinSizeEstimator(chain_query, catalog, ELS).estimate(names)
        clique_estimate = JoinSizeEstimator(clique_query, catalog, ELS).estimate(names)
        assert chain_estimate == pytest.approx(clique_estimate, rel=1e-9)


class TestSanityInvariants:
    @given(stats=chain_statistics())
    @settings(max_examples=60, deadline=None)
    def test_estimates_are_finite_and_nonnegative(self, stats):
        catalog, query = build_chain(stats)
        for config in (ELS, SM, SSS):
            estimate = JoinSizeEstimator(query, catalog, config).estimate(
                list(query.tables)
            )
            assert estimate >= 0.0
            assert math.isfinite(estimate)

    @given(stats=chain_statistics())
    @settings(max_examples=60, deadline=None)
    def test_estimate_bounded_by_cartesian_product(self, stats):
        catalog, query = build_chain(stats)
        cartesian = 1.0
        for rows, _ in stats:
            cartesian *= rows
        estimate = JoinSizeEstimator(query, catalog, ELS).estimate(list(query.tables))
        assert estimate <= cartesian * (1 + 1e-9)
