"""Sampled ANALYZE tests: Haas-Stokes estimation and end-to-end effects."""

import pytest

from repro.catalog import TableSchema
from repro.catalog.sampling import (
    haas_stokes_distinct,
    sample_column_stats,
    sample_table_stats,
)
from repro.errors import CatalogError
from repro.storage import Table
from repro.workloads import TableSpec, build_database


def make_table(values, name="R", column="x"):
    table = Table(TableSchema.of(name, column))
    table.extend([(v,) for v in values], validate=False)
    return table


class TestHaasStokes:
    def test_key_column_recovers_total(self):
        """All-singleton sample: D = N exactly."""
        assert haas_stokes_distinct(100, 100, 100, 10000) == 10000

    def test_no_singletons_keeps_sample_distinct(self):
        """Every sampled value seen twice-plus: the sample saw everything."""
        assert haas_stokes_distinct(50, 0, 1000, 10000) == 50

    def test_full_sample_is_exact(self):
        assert haas_stokes_distinct(73, 10, 500, 500) == 73

    def test_empty_sample(self):
        assert haas_stokes_distinct(0, 0, 0, 100) == 0

    def test_bounded_by_total_rows(self):
        assert haas_stokes_distinct(10, 10, 10, 20) <= 20

    def test_at_least_sample_distinct(self):
        assert haas_stokes_distinct(30, 5, 100, 10**6) >= 30

    def test_inconsistent_inputs_rejected(self):
        with pytest.raises(CatalogError):
            haas_stokes_distinct(5, 10, 20, 100)  # f1 > d
        with pytest.raises(CatalogError):
            haas_stokes_distinct(5, 2, 200, 100)  # n > N


class TestSampleColumnStats:
    def test_min_max_from_sample(self):
        stats = sample_column_stats([5, 1, 9], total_rows=100)
        assert stats.low == 1 and stats.high == 9

    def test_mcv_counts_scaled(self):
        values = [1] * 50 + [2] * 50
        stats = sample_column_stats(values, total_rows=1000, mcv_k=2)
        assert stats.mcv is not None
        assert stats.mcv.entries[1] == pytest.approx(500, rel=0.01)


class TestSampleTableStats:
    def test_full_fraction_is_exact(self):
        table = make_table(list(range(100)))
        stats = sample_table_stats(table, 1.0)
        assert stats.column("x").distinct == 100

    def test_key_column_estimated_accurately(self):
        """10% sample of a 10000-row key column: Haas-Stokes lands at N."""
        table = make_table(list(range(10000)))
        stats = sample_table_stats(table, 0.1, seed=1)
        estimate = stats.column("x").distinct
        assert estimate == pytest.approx(10000, rel=0.05)

    def test_duplicated_column_estimated_accurately(self):
        """10 copies of each value: most values appear in a 20% sample."""
        values = [v for v in range(1000) for _ in range(10)]
        table = make_table(values)
        stats = sample_table_stats(table, 0.2, seed=2)
        estimate = stats.column("x").distinct
        assert estimate == pytest.approx(1000, rel=0.15)

    def test_row_count_always_exact(self):
        table = make_table(list(range(500)))
        stats = sample_table_stats(table, 0.05, seed=3)
        assert stats.row_count == 500

    def test_invalid_fraction(self):
        table = make_table([1])
        with pytest.raises(CatalogError):
            sample_table_stats(table, 0.0)
        with pytest.raises(CatalogError):
            sample_table_stats(table, 1.5)

    def test_deterministic_under_seed(self):
        table = make_table(list(range(1000)))
        a = sample_table_stats(table, 0.1, seed=7).column("x").distinct
        b = sample_table_stats(table, 0.1, seed=7).column("x").distinct
        assert a == b

    def test_naive_scaling_would_be_wrong(self):
        """The reason Haas-Stokes exists: linear scaling of the sample's
        distinct count misestimates duplicated columns badly."""
        values = [v for v in range(100) for _ in range(100)]  # d=100, N=10000
        table = make_table(values)
        stats = sample_table_stats(table, 0.1, seed=4)
        haas = stats.column("x").distinct
        # A 1000-row sample sees ~100 distincts; naive scaling says ~1000.
        assert haas == pytest.approx(100, rel=0.1)


class TestEndToEndWithSampledStats:
    def test_estimation_quality_degrades_gracefully(self):
        """ELS on a 10%-sampled catalog stays within a small factor of ELS
        on the exact catalog for a uniform chain."""
        from repro.analysis import true_join_size
        from repro.core import ELS, JoinSizeEstimator
        from repro.catalog import Catalog
        from repro.sql import Projection, Query, join_predicate

        specs = [
            TableSpec.uniform("A", 2000, {"c": 200}),
            TableSpec.uniform("B", 5000, {"c": 500}),
            TableSpec.uniform("C", 3000, {"c": 1000}),
        ]
        database = build_database(specs, seed=5)
        names = ["A", "B", "C"]
        query = Query.build(
            names,
            [join_predicate("A", "c", "B", "c"), join_predicate("B", "c", "C", "c")],
            Projection(count_star=True),
        )
        sampled_catalog = Catalog()
        for name in names:
            table = database.table(name)
            sampled_catalog.register(
                table.schema, sample_table_stats(table, 0.1, seed=6)
            )
        truth = true_join_size(query, database)
        exact = JoinSizeEstimator(query, database.catalog, ELS).estimate(names)
        sampled = JoinSizeEstimator(query, sampled_catalog, ELS).estimate(names)
        assert exact == pytest.approx(truth, rel=0.01)
        assert sampled == pytest.approx(truth, rel=0.5)
