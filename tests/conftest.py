"""Shared fixtures: the paper's catalogs and queries, small databases."""

from __future__ import annotations

import random

import pytest

from repro.catalog import Catalog
from repro.sql import parse_query
from repro.workloads import (
    example_1b_catalog,
    example_1b_query,
    load_smbg_database,
    section6_catalog,
    section6_query,
    smbg_catalog,
    smbg_query,
)


@pytest.fixture
def catalog_1b() -> Catalog:
    """Example 1b statistics (R1/R2/R3 chain)."""
    return example_1b_catalog()


@pytest.fixture
def query_1b():
    """Example 1a query over R1, R2, R3."""
    return example_1b_query()


@pytest.fixture
def catalog_sec6() -> Catalog:
    return section6_catalog()


@pytest.fixture
def query_sec6():
    return section6_query()


@pytest.fixture
def catalog_smbg() -> Catalog:
    """Section 8 statistics at full scale."""
    return smbg_catalog()


@pytest.fixture
def query_smbg():
    """Section 8 query (before PTC)."""
    return smbg_query()


@pytest.fixture(scope="session")
def smbg_database_small():
    """A 10%-scale S/M/B/G database for execution tests (session-cached)."""
    return load_smbg_database(scale=0.1, seed=7)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)
