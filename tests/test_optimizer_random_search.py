"""Randomized enumerator tests: iterative improvement and annealing."""

import random

import pytest

from repro.catalog import Catalog
from repro.core import ELS, JoinSizeEstimator
from repro.errors import OptimizationError
from repro.optimizer import (
    CostModel,
    Optimizer,
    cost_of_order,
    enumerate_annealing,
    enumerate_dp,
    enumerate_iterative_improvement,
    leaf_order,
)
from repro.optimizer.enumerate import _build_scans
from repro.sql import Projection, Query, join_predicate
from repro.workloads import chain_workload, smbg_catalog, smbg_query


def setup_chain(num_tables, seed=0, max_rows=20000):
    workload = chain_workload(
        num_tables, random.Random(seed), min_rows=100, max_rows=max_rows
    )
    entries = {
        spec.name: (spec.rows, {c: cs.distinct for c, cs in spec.columns.items()})
        for spec in workload.specs
    }
    catalog = Catalog.from_stats(entries)
    estimator = JoinSizeEstimator(workload.query, catalog, ELS)
    widths = {spec.name: 4 for spec in workload.specs}
    rows = {spec.name: spec.rows for spec in workload.specs}
    return estimator, widths, rows


class TestCostOfOrder:
    def test_matches_dp_along_dp_order(self):
        from repro.optimizer import JoinMethod

        estimator, widths, rows = setup_chain(4)
        model = CostModel()
        dp_plan = enumerate_dp(estimator, model, widths, rows)
        scans = _build_scans(estimator, model, widths, rows)
        methods = (JoinMethod.NESTED_LOOPS, JoinMethod.SORT_MERGE)
        candidate = cost_of_order(
            list(leaf_order(dp_plan)), scans, estimator, model, methods
        )
        assert candidate is not None
        assert candidate.cost == pytest.approx(dp_plan.estimated_cost)


class TestIterativeImprovement:
    def test_finds_dp_optimum_on_small_chain(self):
        estimator, widths, rows = setup_chain(5, seed=1)
        model = CostModel()
        dp_plan = enumerate_dp(estimator, model, widths, rows)
        ii_plan = enumerate_iterative_improvement(
            estimator, model, widths, rows, seed=3, restarts=10
        )
        assert ii_plan.estimated_cost <= dp_plan.estimated_cost * 1.3

    def test_deterministic_under_seed(self):
        estimator, widths, rows = setup_chain(5, seed=2)
        model = CostModel()
        a = enumerate_iterative_improvement(estimator, model, widths, rows, seed=9)
        b = enumerate_iterative_improvement(estimator, model, widths, rows, seed=9)
        assert leaf_order(a) == leaf_order(b)
        assert a.estimated_cost == b.estimated_cost

    def test_handles_many_tables(self):
        estimator, widths, rows = setup_chain(14, seed=3, max_rows=3000)
        plan = enumerate_iterative_improvement(
            estimator, CostModel(), widths, rows, seed=1, restarts=3, max_stale_moves=20
        )
        assert len(leaf_order(plan)) == 14

    def test_single_table(self):
        catalog = Catalog.from_stats({"A": (5, {"c": 5})})
        query = Query.build(["A"], [], Projection(count_star=True))
        estimator = JoinSizeEstimator(query, catalog, ELS)
        plan = enumerate_iterative_improvement(
            estimator, CostModel(), {"A": 4}, {"A": 5}
        )
        assert leaf_order(plan) == ("A",)

    def test_empty_query_rejected(self):
        catalog = Catalog.from_stats({"A": (5, {"c": 5})})
        query = Query.build(["A"], [], Projection(count_star=True))
        estimator = JoinSizeEstimator(query, catalog, ELS)
        object.__setattr__(estimator.query, "tables", ())
        with pytest.raises(OptimizationError):
            enumerate_iterative_improvement(estimator, CostModel(), {}, {})


class TestAnnealing:
    def test_finds_near_optimal_on_small_chain(self):
        estimator, widths, rows = setup_chain(5, seed=4)
        model = CostModel()
        dp_plan = enumerate_dp(estimator, model, widths, rows)
        sa_plan = enumerate_annealing(estimator, model, widths, rows, seed=5)
        assert sa_plan.estimated_cost <= dp_plan.estimated_cost * 1.5

    def test_deterministic_under_seed(self):
        estimator, widths, rows = setup_chain(4, seed=5)
        model = CostModel()
        a = enumerate_annealing(estimator, model, widths, rows, seed=2)
        b = enumerate_annealing(estimator, model, widths, rows, seed=2)
        assert a.estimated_cost == b.estimated_cost


class TestFacadeIntegration:
    def test_random_enumerator_on_smbg(self):
        optimizer = Optimizer(smbg_catalog(), enumerator="random", seed=7)
        result = optimizer.optimize(smbg_query(), ELS)
        dp = Optimizer(smbg_catalog()).optimize(smbg_query(), ELS)
        assert result.estimated_cost == pytest.approx(dp.estimated_cost, rel=0.25)

    def test_annealing_enumerator_on_smbg(self):
        optimizer = Optimizer(smbg_catalog(), enumerator="annealing", seed=7)
        result = optimizer.optimize(smbg_query(), ELS)
        assert set(result.join_order) == {"S", "M", "B", "G"}

    def test_unknown_enumerator_still_rejected(self):
        with pytest.raises(OptimizationError):
            Optimizer(smbg_catalog(), enumerator="quantum")
