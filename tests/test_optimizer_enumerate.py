"""Enumerator tests: DP and greedy plan construction, cartesian deferral."""

import pytest

from repro.catalog import Catalog
from repro.core import ELS, JoinSizeEstimator
from repro.errors import OptimizationError
from repro.optimizer import CostModel, JoinMethod, enumerate_dp, enumerate_greedy, leaf_order
from repro.optimizer.plans import JoinPlan, ScanPlan
from repro.sql import Projection, Query, join_predicate


def make_estimator(entries, predicates, tables=None):
    catalog = Catalog.from_stats(entries)
    names = tables or list(entries)
    query = Query.build(names, predicates, Projection(count_star=True))
    return JoinSizeEstimator(query, catalog, ELS)


def widths_and_rows(entries):
    widths = {name: 4 * len(columns) for name, (_, columns) in entries.items()}
    rows = {name: rows_ for name, (rows_, _) in entries.items()}
    return widths, rows


CHAIN = {
    "A": (100, {"c": 100}),
    "B": (10000, {"c": 10000}),
    "C": (100000, {"c": 100000}),
}
CHAIN_PREDS = [
    join_predicate("A", "c", "B", "c"),
    join_predicate("B", "c", "C", "c"),
]


class TestDP:
    def test_single_table_returns_scan(self):
        entries = {"A": (100, {"c": 100})}
        estimator = make_estimator(entries, [])
        widths, rows = widths_and_rows(entries)
        plan = enumerate_dp(estimator, CostModel(), widths, rows)
        assert isinstance(plan, ScanPlan)
        assert plan.relation == "A"

    def test_covers_all_tables(self):
        estimator = make_estimator(CHAIN, CHAIN_PREDS)
        widths, rows = widths_and_rows(CHAIN)
        plan = enumerate_dp(estimator, CostModel(), widths, rows)
        assert plan.tables == frozenset({"A", "B", "C"})

    def test_small_table_joined_early(self):
        """With a tiny A and a huge C, no sane plan starts with C as outer."""
        estimator = make_estimator(CHAIN, CHAIN_PREDS)
        widths, rows = widths_and_rows(CHAIN)
        plan = enumerate_dp(estimator, CostModel(), widths, rows)
        order = leaf_order(plan)
        assert order.index("A") < order.index("C")

    def test_no_cartesian_when_connected_plan_exists(self):
        estimator = make_estimator(CHAIN, CHAIN_PREDS)
        widths, rows = widths_and_rows(CHAIN)
        plan = enumerate_dp(estimator, CostModel(), widths, rows)
        node = plan
        while isinstance(node, JoinPlan):
            assert not node.is_cartesian
            node = node.left

    def test_cartesian_fallback_for_disconnected_query(self):
        entries = {"A": (10, {"c": 10}), "B": (20, {"c": 20})}
        estimator = make_estimator(entries, [])
        widths, rows = widths_and_rows(entries)
        plan = enumerate_dp(estimator, CostModel(), widths, rows)
        assert isinstance(plan, JoinPlan)
        assert plan.is_cartesian
        assert plan.estimated_rows == pytest.approx(200.0)

    def test_methods_restricted(self):
        estimator = make_estimator(CHAIN, CHAIN_PREDS)
        widths, rows = widths_and_rows(CHAIN)
        plan = enumerate_dp(
            estimator, CostModel(), widths, rows, methods=(JoinMethod.NESTED_LOOPS,)
        )
        node = plan
        while isinstance(node, JoinPlan):
            assert node.method is JoinMethod.NESTED_LOOPS
            node = node.left

    def test_hash_method_available_when_enabled(self):
        estimator = make_estimator(CHAIN, CHAIN_PREDS)
        widths, rows = widths_and_rows(CHAIN)
        plan = enumerate_dp(
            estimator,
            CostModel(),
            widths,
            rows,
            methods=(JoinMethod.NESTED_LOOPS, JoinMethod.HASH),
        )
        methods = set()
        node = plan
        while isinstance(node, JoinPlan):
            methods.add(node.method)
            node = node.left
        assert JoinMethod.HASH in methods

    def test_plan_carries_estimates(self):
        estimator = make_estimator(CHAIN, CHAIN_PREDS)
        widths, rows = widths_and_rows(CHAIN)
        plan = enumerate_dp(estimator, CostModel(), widths, rows)
        assert plan.estimated_rows > 0
        assert plan.estimated_cost > 0
        # The root estimate agrees with re-walking the estimator.
        assert plan.estimated_rows == pytest.approx(
            estimator.estimate(list(leaf_order(plan)))
        )


class TestGreedy:
    def test_greedy_covers_all_tables(self):
        estimator = make_estimator(CHAIN, CHAIN_PREDS)
        widths, rows = widths_and_rows(CHAIN)
        plan = enumerate_greedy(estimator, CostModel(), widths, rows)
        assert plan.tables == frozenset({"A", "B", "C"})

    def test_greedy_matches_dp_on_small_chain(self):
        estimator = make_estimator(CHAIN, CHAIN_PREDS)
        widths, rows = widths_and_rows(CHAIN)
        dp_plan = enumerate_dp(estimator, CostModel(), widths, rows)
        greedy_plan = enumerate_greedy(estimator, CostModel(), widths, rows)
        assert greedy_plan.estimated_cost <= dp_plan.estimated_cost * 3

    def test_greedy_handles_many_tables(self):
        entries = {f"T{i}": (1000, {"c": 1000}) for i in range(1, 13)}
        predicates = [
            join_predicate(f"T{i}", "c", f"T{i+1}", "c") for i in range(1, 12)
        ]
        estimator = make_estimator(entries, predicates, tables=list(entries))
        widths, rows = widths_and_rows(entries)
        plan = enumerate_greedy(estimator, CostModel(), widths, rows)
        assert len(leaf_order(plan)) == 12

    def test_greedy_single_table(self):
        entries = {"A": (5, {"c": 5})}
        estimator = make_estimator(entries, [])
        widths, rows = widths_and_rows(entries)
        plan = enumerate_greedy(estimator, CostModel(), widths, rows)
        assert isinstance(plan, ScanPlan)
