"""Accuracy harness and error-propagation tests."""

import random

import pytest

from repro.analysis import (
    PAPER_ALGORITHMS,
    evaluate_workload,
    prefix_query,
    run_error_propagation,
)
from repro.sql import parse_query
from repro.workloads import build_database, chain_workload, star_workload


class TestPrefixQuery:
    def test_keeps_internal_predicates_only(self):
        query = parse_query(
            "SELECT COUNT(*) FROM A, B, C WHERE A.x = B.x AND B.x = C.x AND C.x < 5"
        )
        prefix = prefix_query(query, ["A", "B"])
        assert prefix.tables == ("A", "B")
        assert len(prefix.predicates) == 1

    def test_projection_becomes_count(self):
        query = parse_query("SELECT A.x FROM A, B WHERE A.x = B.x")
        prefix = prefix_query(query, ["A"])
        assert prefix.projection.count_star

    def test_aliases_preserved(self):
        query = parse_query("SELECT COUNT(*) FROM Orders o, Items i WHERE o.x = i.x")
        prefix = prefix_query(query, ["o"])
        assert prefix.base_table("o") == "Orders"


class TestEvaluateWorkload:
    def test_chain_records_all_algorithms(self):
        workload = chain_workload(3, random.Random(0))
        records = evaluate_workload(workload, seed=1)
        assert [r.algorithm for r in records] == [a.name for a in PAPER_ALGORITHMS]
        assert all(r.actual >= 0 for r in records)
        assert all(r.q_error >= 1.0 for r in records)

    def test_els_at_least_as_good_on_uniform_chain(self):
        """On single-class uniform chains ELS should never lose to Rule M
        (both see the same statistics; M multiplies redundant
        selectivities)."""
        failures = 0
        for trial in range(5):
            workload = chain_workload(4, random.Random(trial))
            records = {
                r.algorithm: r for r in evaluate_workload(workload, seed=trial)
            }
            if records["ELS"].q_error > records["SM + PTC"].q_error * 1.01:
                failures += 1
        assert failures == 0

    def test_star_all_algorithms_agree(self):
        """Separate classes per dimension: M, SS, LS coincide."""
        workload = star_workload(2, random.Random(3))
        records = evaluate_workload(workload, seed=3)
        with_ptc = [r for r in records if r.algorithm != "SM (no PTC)"]
        estimates = {round(r.estimate, 6) for r in with_ptc}
        assert len(estimates) == 1

    def test_database_can_be_reused(self):
        workload = chain_workload(3, random.Random(1))
        database = build_database(workload.specs, seed=5)
        a = evaluate_workload(workload, database=database)
        b = evaluate_workload(workload, database=database)
        assert [r.estimate for r in a] == [r.estimate for r in b]

    def test_explicit_order(self):
        workload = chain_workload(3, random.Random(2))
        records = evaluate_workload(workload, seed=2, order=["T3", "T2", "T1"])
        assert len(records) == len(PAPER_ALGORITHMS)


class TestErrorPropagation:
    def test_points_cover_grid(self):
        points = run_error_propagation(max_tables=4, trials=3, seed=0)
        algorithms = {p.algorithm for p in points}
        assert algorithms == {a.name for a in PAPER_ALGORITHMS}
        joins = {p.num_joins for p in points}
        assert joins == {1, 2, 3}

    def test_rule_m_error_grows_with_joins(self):
        """The multiplicative rule's error must increase with chain length
        (the [4] error-propagation phenomenon)."""
        points = run_error_propagation(max_tables=5, trials=6, seed=1)
        m_points = sorted(
            (p for p in points if p.algorithm == "SM + PTC"),
            key=lambda p: p.num_joins,
        )
        first = m_points[0].q_errors.geometric_mean
        last = m_points[-1].q_errors.geometric_mean
        assert last > first

    def test_els_error_stays_small_on_uniform_chains(self):
        points = run_error_propagation(
            max_tables=5, trials=6, seed=2, local_predicate_probability=0.0
        )
        els_points = [p for p in points if p.algorithm == "ELS"]
        for point in els_points:
            assert point.q_errors.geometric_mean < 3.0

    def test_summary_fields_populated(self):
        points = run_error_propagation(max_tables=3, trials=2, seed=3)
        for point in points:
            assert point.q_errors.count == 2
            assert isinstance(point.mean_log10_ratio, float)
