"""Chaos tests for the fan-out probe: worker crashes must never corrupt
results or hang the query.

The fault hook (``REPRO_MORSEL_FAULT``) is deterministic — an explicit
``ordinal:attempt`` spec, no randomness — so every scenario here replays
exactly.  A marked worker dies with ``os._exit``, which the pool reports
as :class:`BrokenProcessPool`; the parent must re-spawn the pool and
retry, and the retried run must be byte-identical to an undisturbed
serial execution.
"""

import pytest

from repro.analysis import build_reference_plan
from repro.errors import WorkloadError
from repro.execution import Executor
from repro.execution import parallel as parallel_module
from repro.execution.parallel import MAX_FANOUT_ATTEMPTS, MORSEL_FAULT_ENV
from repro.sql import parse_query
from repro.workloads import ColumnSpec, TableSpec, build_database


@pytest.fixture
def fanout_thresholds(monkeypatch):
    """Force the fan-out path at test-friendly scale."""
    monkeypatch.setattr(parallel_module, "INDEX_MIN_PROBE_ROWS", 10**9)
    monkeypatch.setattr(parallel_module, "FANOUT_MIN_PROBE_ROWS", 1)


@pytest.fixture
def database():
    specs = (
        TableSpec("B", 60, {"k": ColumnSpec(distinct=40)}),
        TableSpec("P", 4000, {"k": ColumnSpec(distinct=40)}),
    )
    return build_database(specs, seed=17)


@pytest.fixture
def plan(database):
    query = parse_query(
        "SELECT COUNT(*) FROM B, P WHERE B.k = P.k",
        schemas={"B": ("k",), "P": ("k",)},
    )
    return build_reference_plan(query, database)


def _execute(database, plan, workers):
    return Executor(
        database, engine="parallel", morsel_workers=workers, morsel_rows=512
    ).execute(plan)


class TestWorkerCrashRecovery:
    def test_crash_mid_morsel_retries_to_identical_results(
        self, fanout_thresholds, database, plan, monkeypatch
    ):
        baseline = _execute(database, plan, workers=1)  # serial path, no pool
        # Kill the worker running morsel 0 on the first pool attempt only;
        # attempt 2 runs on a fresh pool and must succeed.
        monkeypatch.setenv(MORSEL_FAULT_ENV, "0:1")
        recovered = _execute(database, plan, workers=2)
        assert recovered.rows == baseline.rows  # byte-identical, order included
        assert recovered.count == baseline.count

    def test_crash_on_late_morsel_recovers_too(
        self, fanout_thresholds, database, plan, monkeypatch
    ):
        baseline = _execute(database, plan, workers=1)
        monkeypatch.setenv(MORSEL_FAULT_ENV, "3:1")
        recovered = _execute(database, plan, workers=2)
        assert recovered.rows == baseline.rows

    def test_persistent_crashes_surface_as_workload_error(
        self, fanout_thresholds, database, plan, monkeypatch
    ):
        # Morsel 0 dies on every attempt: the query must fail loudly with
        # a WorkloadError after MAX_FANOUT_ATTEMPTS pools — never hang.
        spec = ",".join(f"0:{a}" for a in range(1, MAX_FANOUT_ATTEMPTS + 1))
        monkeypatch.setenv(MORSEL_FAULT_ENV, spec)
        with pytest.raises(WorkloadError, match="pool attempts"):
            _execute(database, plan, workers=2)

    def test_undisturbed_fanout_matches_serial(
        self, fanout_thresholds, database, plan, monkeypatch
    ):
        monkeypatch.delenv(MORSEL_FAULT_ENV, raising=False)
        baseline = _execute(database, plan, workers=1)
        fanned = _execute(database, plan, workers=2)
        assert fanned.rows == baseline.rows
        assert fanned.count == baseline.count
