"""Bushy enumeration and set-to-set estimation tests."""

import pytest

from repro.catalog import Catalog
from repro.core import ELS, SM, JoinSizeEstimator
from repro.errors import EstimationError
from repro.execution import Executor
from repro.optimizer import (
    CostModel,
    JoinPlan,
    Optimizer,
    ScanPlan,
    enumerate_dp,
    enumerate_dp_bushy,
    leaf_order,
)
from repro.sql import Projection, Query, join_predicate
from repro.workloads import load_smbg_database, smbg_catalog, smbg_query


def chain_setup(entries, predicates):
    catalog = Catalog.from_stats(entries)
    query = Query.build(list(entries), predicates, Projection(count_star=True))
    estimator = JoinSizeEstimator(query, catalog, ELS)
    widths = {n: 4 for n in entries}
    rows = {n: r for n, (r, _) in entries.items()}
    return estimator, widths, rows


class TestJoinStates:
    def setup_method(self):
        self.catalog = Catalog.from_stats(
            {
                "R1": (100, {"x": 10}),
                "R2": (1000, {"y": 100}),
                "R3": (1000, {"z": 1000}),
                "R4": (500, {"w": 500}),
            }
        )
        predicates = [
            join_predicate("R1", "x", "R2", "y"),
            join_predicate("R2", "y", "R3", "z"),
            join_predicate("R3", "z", "R4", "w"),
        ]
        query = Query.build(
            ["R1", "R2", "R3", "R4"], predicates, Projection(count_star=True)
        )
        self.estimator = JoinSizeEstimator(query, self.catalog, ELS)

    def test_pair_of_pairs_matches_closed_form(self):
        """(R1 >< R2) >< (R3 >< R4) must equal Equation 3 under Rule LS."""
        left = self.estimator.estimate_order(["R1", "R2"])
        right = self.estimator.estimate_order(["R3", "R4"])
        from repro.core.estimator import EstimateState

        state, step = self.estimator.join_states(
            EstimateState(frozenset({"R1", "R2"}), left.rows),
            EstimateState(frozenset({"R3", "R4"}), right.rows),
        )
        assert state.rows == pytest.approx(self.estimator.closed_form())
        assert not step.is_cartesian

    def test_overlapping_sets_rejected(self):
        a = self.estimator.start("R1")
        with pytest.raises(EstimationError):
            self.estimator.join_states(a, a)

    def test_cartesian_pair(self):
        """Without closure, R1 and R3 have no crossing predicate.

        Note the original (pre-closure) query must be rebuilt here —
        ``self.estimator.query`` is the closed rewrite.
        """
        predicates = [
            join_predicate("R1", "x", "R2", "y"),
            join_predicate("R2", "y", "R3", "z"),
            join_predicate("R3", "z", "R4", "w"),
        ]
        query = Query.build(
            ["R1", "R2", "R3", "R4"], predicates, Projection(count_star=True)
        )
        estimator = JoinSizeEstimator(query, self.catalog, ELS, apply_closure=False)
        state, step = estimator.join_states(
            estimator.start("R1"), estimator.start("R3")
        )
        assert step.is_cartesian
        assert state.rows == pytest.approx(100 * 1000)

    def test_single_table_join_states_equals_join(self):
        state_a = self.estimator.start("R1")
        state_b = self.estimator.start("R2")
        bushy, _ = self.estimator.join_states(state_a, state_b)
        linear, _ = self.estimator.join(state_a, "R2")
        assert bushy.rows == pytest.approx(linear.rows)

    def test_eligible_between_requires_containment(self):
        eligible = self.estimator.eligible_between(
            frozenset({"R1"}), frozenset({"R2"})
        )
        assert all(p.predicate.tables == {"R1", "R2"} for p in eligible)


class TestBushyEnumeration:
    ENTRIES = {
        "A": (100, {"c": 100}),
        "B": (10000, {"c": 10000}),
        "C": (100000, {"c": 100000}),
        "D": (500, {"c": 500}),
    }
    PREDICATES = [
        join_predicate("A", "c", "B", "c"),
        join_predicate("B", "c", "C", "c"),
        join_predicate("C", "c", "D", "c"),
    ]

    def test_bushy_covers_all_tables(self):
        estimator, widths, rows = chain_setup(self.ENTRIES, self.PREDICATES)
        plan = enumerate_dp_bushy(estimator, CostModel(), widths, rows)
        assert plan.tables == frozenset(self.ENTRIES)

    def test_bushy_never_worse_than_left_deep(self):
        """Left-deep plans are a subset of bushy plans, so the bushy
        optimum's cost is <= the left-deep optimum's cost."""
        estimator, widths, rows = chain_setup(self.ENTRIES, self.PREDICATES)
        left_deep = enumerate_dp(estimator, CostModel(), widths, rows)
        bushy = enumerate_dp_bushy(estimator, CostModel(), widths, rows)
        assert bushy.estimated_cost <= left_deep.estimated_cost + 1e-9

    def test_bushy_estimates_match_closed_form(self):
        estimator, widths, rows = chain_setup(self.ENTRIES, self.PREDICATES)
        plan = enumerate_dp_bushy(estimator, CostModel(), widths, rows)
        assert plan.estimated_rows == pytest.approx(estimator.closed_form())

    def test_single_table(self):
        estimator, widths, rows = chain_setup({"A": (5, {"c": 5})}, [])
        plan = enumerate_dp_bushy(estimator, CostModel(), widths, rows)
        assert isinstance(plan, ScanPlan)

    def test_disconnected_query_falls_back_to_cartesian(self):
        estimator, widths, rows = chain_setup(
            {"A": (10, {"c": 10}), "B": (20, {"c": 20})}, []
        )
        plan = enumerate_dp_bushy(estimator, CostModel(), widths, rows)
        assert isinstance(plan, JoinPlan) and plan.is_cartesian


class TestBushyEndToEnd:
    def test_optimizer_facade_accepts_bushy(self):
        optimizer = Optimizer(smbg_catalog(), enumerator="dp-bushy")
        result = optimizer.optimize(smbg_query(), ELS)
        assert set(result.join_order) == {"S", "M", "B", "G"}
        assert result.estimated_rows == pytest.approx(99.0, rel=0.02)

    def test_bushy_plan_executes_correctly(self):
        database = load_smbg_database(scale=0.05, seed=3)
        query = smbg_query(threshold=10)
        optimizer = Optimizer(database.catalog, enumerator="dp-bushy")
        result = optimizer.optimize(query, ELS)
        run = Executor(database).count(result.plan)
        assert run.count == 9

    def test_bushy_plan_may_be_genuinely_bushy(self):
        """At full-scale statistics the chosen S/M/B/G plan joins (G, M)
        under B — verify some right child is a join, and leaf_order and
        joins_of handle it."""
        optimizer = Optimizer(smbg_catalog(), enumerator="dp-bushy")
        result = optimizer.optimize(smbg_query(), ELS)
        from repro.optimizer import joins_of

        joins = joins_of(result.plan)
        assert len(joins) == 3
        has_bushy = any(isinstance(j.right, JoinPlan) for j in joins)
        # Not guaranteed in general, but stable for this catalog and seed.
        assert has_bushy
        assert len(leaf_order(result.plan)) == 4
