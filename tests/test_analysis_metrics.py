"""Error metric and summary tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    AsciiTable,
    format_quantity,
    log10_ratio,
    q_error,
    ratio_error,
    summarize_errors,
)


class TestRatioError:
    def test_perfect_estimate(self):
        assert ratio_error(100, 100) == 1.0

    def test_underestimate_below_one(self):
        assert ratio_error(1, 1000) == pytest.approx(0.001)

    def test_overestimate_above_one(self):
        assert ratio_error(1000, 100) == pytest.approx(10.0)

    def test_zero_guarded(self):
        assert math.isfinite(ratio_error(0, 100))
        assert math.isfinite(ratio_error(100, 0))


class TestQError:
    def test_perfect(self):
        assert q_error(50, 50) == 1.0

    def test_symmetric(self):
        assert q_error(10, 1000) == pytest.approx(q_error(1000, 10))

    def test_example_2_magnitude(self):
        """Rule M's Example 2 estimate: 1 vs 1000 -> q-error 1000."""
        assert q_error(1.0, 1000) == pytest.approx(1000.0)

    @given(
        estimate=st.floats(min_value=1e-6, max_value=1e6),
        actual=st.floats(min_value=1e-6, max_value=1e6),
    )
    @settings(max_examples=80, deadline=None)
    def test_at_least_one(self, estimate, actual):
        assert q_error(estimate, actual) >= 1.0


class TestLog10Ratio:
    def test_signs(self):
        assert log10_ratio(1, 1000) == pytest.approx(-3.0)
        assert log10_ratio(1000, 1) == pytest.approx(3.0)
        assert log10_ratio(5, 5) == pytest.approx(0.0)


class TestSummaries:
    def test_basic_statistics(self):
        summary = summarize_errors([1.0, 2.0, 4.0, 8.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(3.75)
        assert summary.geometric_mean == pytest.approx((1 * 2 * 4 * 8) ** 0.25)
        assert summary.median == pytest.approx(3.0)
        assert summary.maximum == 8.0

    def test_p90_interpolates(self):
        summary = summarize_errors([float(i) for i in range(1, 11)])
        assert summary.p90 == pytest.approx(9.1)

    def test_single_value(self):
        summary = summarize_errors([2.5])
        assert summary.median == 2.5 and summary.p90 == 2.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_errors([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            summarize_errors([1.0, 0.0])

    def test_str_renders(self):
        assert "gmean" in str(summarize_errors([1.0, 2.0]))


class TestFormatQuantity:
    def test_integers_plain(self):
        assert format_quantity(1000) == "1000"
        assert format_quantity(1000.0) == "1000"

    def test_tiny_values_scientific(self):
        assert format_quantity(4e-21) == "4e-21"

    def test_huge_values_scientific(self):
        assert "e+" in format_quantity(3.85e9)

    def test_zero_and_nan(self):
        assert format_quantity(0.0) == "0"
        assert format_quantity(float("nan")) == "nan"


class TestAsciiTable:
    def test_render_alignment(self):
        table = AsciiTable(["name", "value"])
        table.add_row("alpha", 1)
        table.add_row("b", 4e-21)
        text = table.render()
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].index("|") == lines[2].index("|") == lines[3].index("|")

    def test_title(self):
        table = AsciiTable(["a"], title="My table")
        table.add_row(1)
        assert table.render().startswith("My table")

    def test_none_renders_dash(self):
        table = AsciiTable(["a"])
        table.add_row(None)
        assert "-" in table.render().splitlines()[-1]

    def test_arity_checked(self):
        table = AsciiTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)


class TestRankCorrelation:
    def test_perfect_agreement(self):
        from repro.analysis import rank_correlation

        assert rank_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        from repro.analysis import rank_correlation

        assert rank_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_monotone_transform_invariant(self):
        from repro.analysis import rank_correlation

        xs = [1.0, 5.0, 2.0, 9.0]
        ys = [x**3 for x in xs]
        assert rank_correlation(xs, ys) == pytest.approx(1.0)

    def test_ties_get_average_ranks(self):
        from repro.analysis import rank_correlation

        value = rank_correlation([1, 1, 2], [1, 2, 3])
        assert -1.0 <= value <= 1.0

    def test_constant_series_is_zero(self):
        from repro.analysis import rank_correlation

        assert rank_correlation([5, 5, 5], [1, 2, 3]) == 0.0

    def test_length_mismatch_rejected(self):
        from repro.analysis import rank_correlation

        with pytest.raises(ValueError):
            rank_correlation([1], [1, 2])

    def test_too_short_rejected(self):
        from repro.analysis import rank_correlation

        with pytest.raises(ValueError):
            rank_correlation([1], [1])
