"""Histogram tests: construction, cumulative fractions, MCVs, invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.histogram import (
    EquiDepthHistogram,
    EquiWidthHistogram,
    MostCommonValues,
    build_equi_depth,
    build_equi_width,
    build_mcv,
)
from repro.errors import CatalogError
from repro.sql.predicates import Op


def exact_fraction(values, op, constant):
    return sum(1 for v in values if op.evaluate(v, constant)) / len(values)


class TestBuildEquiWidth:
    def test_empty_returns_none(self):
        assert build_equi_width([]) is None

    def test_counts_sum_to_total(self):
        values = list(range(100))
        hist = build_equi_width(values, buckets=7)
        assert sum(hist.counts) == 100
        assert hist.total == 100

    def test_single_value_domain(self):
        hist = build_equi_width([5, 5, 5])
        assert hist.low == hist.high == 5
        assert hist.counts == (3,)

    def test_zero_buckets_rejected(self):
        with pytest.raises(CatalogError):
            build_equi_width([1, 2], buckets=0)

    def test_validation_counts_match_total(self):
        with pytest.raises(CatalogError):
            EquiWidthHistogram(0, 10, (5, 5), total=9)

    def test_bounds_validated(self):
        with pytest.raises(CatalogError):
            EquiWidthHistogram(10, 0, (1,), total=1)


class TestEquiWidthFractions:
    def setup_method(self):
        self.values = list(range(1, 1001))  # uniform 1..1000
        self.hist = build_equi_width(self.values, buckets=10)

    @pytest.mark.parametrize("op", [Op.LT, Op.LE, Op.GT, Op.GE])
    @pytest.mark.parametrize("constant", [1, 100, 500, 999, 1000])
    def test_range_fraction_close_to_exact(self, op, constant):
        estimate = self.hist.fraction(op, constant)
        exact = exact_fraction(self.values, op, constant)
        assert abs(estimate - exact) < 0.02

    def test_below_range_is_zero_or_one(self):
        assert self.hist.fraction(Op.LT, -5) == 0.0
        assert self.hist.fraction(Op.GT, -5) == 1.0

    def test_above_range(self):
        assert self.hist.fraction(Op.LE, 2000) == 1.0
        assert self.hist.fraction(Op.GT, 2000) == 0.0

    def test_equality_fraction_reasonable(self):
        estimate = self.hist.fraction(Op.EQ, 500)
        assert 0 < estimate < 0.05
        assert abs(estimate - 0.001) < 0.005

    def test_ne_complements_eq(self):
        eq = self.hist.fraction(Op.EQ, 500)
        ne = self.hist.fraction(Op.NE, 500)
        assert abs(eq + ne - 1.0) < 1e-9

    def test_equality_outside_range_is_zero(self):
        assert self.hist.fraction(Op.EQ, 5000) == 0.0

    def test_fraction_between(self):
        estimate = self.hist.fraction_between(100, 200)
        exact = sum(1 for v in self.values if 100 <= v <= 200) / 1000
        assert abs(estimate - exact) < 0.02

    def test_fraction_between_unbounded_sides(self):
        assert abs(self.hist.fraction_between(None, 500) - 0.5) < 0.02
        assert abs(self.hist.fraction_between(500, None) - 0.5) < 0.02
        assert self.hist.fraction_between(None, None) == 1.0


class TestBuildEquiDepth:
    def test_empty_returns_none(self):
        assert build_equi_depth([]) is None

    def test_counts_are_balanced(self):
        rng = random.Random(1)
        values = [rng.randint(1, 10**6) for _ in range(1000)]
        hist = build_equi_depth(values, buckets=10)
        assert sum(hist.counts) == 1000
        assert max(hist.counts) - min(hist.counts) <= 2

    def test_boundaries_monotone(self):
        values = [random.Random(2).randint(1, 100) for _ in range(500)]
        hist = build_equi_depth(values, buckets=8)
        assert list(hist.boundaries) == sorted(hist.boundaries)

    def test_more_buckets_than_values(self):
        hist = build_equi_depth([3, 1, 2], buckets=10)
        assert hist.total == 3

    def test_validation_boundary_count(self):
        with pytest.raises(CatalogError):
            EquiDepthHistogram((1, 2), (1, 1), total=2)

    def test_validation_sorted_boundaries(self):
        with pytest.raises(CatalogError):
            EquiDepthHistogram((5, 1, 10), (1, 1), total=2)


class TestEquiDepthFractions:
    def test_skewed_data_range_accuracy(self):
        # Zipf-ish skew: equi-depth should stay accurate where equi-width
        # loses resolution.
        rng = random.Random(3)
        values = [min(int(1 / max(rng.random(), 1e-9)), 10000) for _ in range(2000)]
        hist = build_equi_depth(values, buckets=20)
        for constant in (1, 2, 5, 10, 100):
            estimate = hist.fraction(Op.LE, constant)
            exact = exact_fraction(values, Op.LE, constant)
            assert abs(estimate - exact) < 0.08

    def test_extremes(self):
        hist = build_equi_depth(list(range(100)), buckets=10)
        assert hist.fraction(Op.LT, 0) == 0.0
        assert hist.fraction(Op.LE, 99) == 1.0
        assert hist.fraction(Op.GE, 0) == 1.0


class TestMostCommonValues:
    def test_build_takes_top_k(self):
        values = ["a"] * 5 + ["b"] * 3 + ["c"] * 1
        mcv = build_mcv(values, k=2)
        assert set(mcv.entries) == {"a", "b"}
        assert mcv.entries["a"] == 5

    def test_equality_fraction(self):
        mcv = build_mcv([1, 1, 1, 2], k=2)
        assert mcv.equality_fraction(1) == 0.75
        assert mcv.equality_fraction(99) is None

    def test_covered_fraction(self):
        mcv = build_mcv([1, 1, 2, 3], k=1)
        assert mcv.covered_fraction == 0.5

    def test_covers(self):
        mcv = build_mcv([1, 2], k=5)
        assert mcv.covers(1) and not mcv.covers(3)

    def test_empty_total(self):
        assert MostCommonValues().equality_fraction(1) is None

    def test_zero_k_rejected(self):
        with pytest.raises(CatalogError):
            build_mcv([1], k=0)


class TestHistogramProperties:
    @given(
        values=st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=300),
        constant=st.integers(min_value=-1200, max_value=1200),
    )
    @settings(max_examples=60, deadline=None)
    def test_cumulative_monotone_and_bounded(self, values, constant):
        for hist in (build_equi_width(values, 8), build_equi_depth(values, 8)):
            le = hist.fraction(Op.LE, constant)
            lt = hist.fraction(Op.LT, constant)
            assert 0.0 <= lt <= le <= 1.0
            assert abs(hist.fraction(Op.GT, constant) - (1.0 - le)) < 1e-9
            assert abs(hist.fraction(Op.GE, constant) - (1.0 - lt)) < 1e-9

    @given(
        values=st.lists(st.integers(min_value=0, max_value=100), min_size=2, max_size=200),
        low=st.integers(min_value=0, max_value=100),
        span=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_between_matches_cumulative_difference(self, values, low, span):
        high = low + span
        for hist in (build_equi_width(values, 5), build_equi_depth(values, 5)):
            between = hist.fraction_between(low, high)
            diff = hist.fraction(Op.LE, high) - hist.fraction(Op.LT, low)
            assert abs(between - max(0.0, diff)) < 1e-9
