"""Error paths of ``repro-els bench`` and the documented exit contract.

The CLI promises four exit codes: ``0`` clean, ``1`` runtime failure
(:class:`~repro.errors.ReproError`, including a failed ``--min-speedup``
gate), ``2`` usage error, ``3`` partial failure (the run finished but
some sweep payloads were degraded).  These tests pin the bench-specific
failure modes: the engine-disagreement guard, the speedup gate, invalid
repeat counts, and the degraded-sweep path.
"""

import json
from types import SimpleNamespace

import pytest

from repro.analysis.bench import run_execution_bench
from repro.analysis.truthcache import DEFAULT_TRUTH_CACHE
from repro.cli import main
from repro.errors import BenchmarkError


def _bench_args(tmp_path, *extra):
    return [
        "bench",
        "--scale",
        "0.02",
        "--repeats",
        "1",
        "--no-sweep",
        "--output",
        str(tmp_path / "bench.json"),
        *extra,
    ]


def _sweep_args(tmp_path, *extra):
    """Bench arguments with the parallel sweep left enabled."""
    return [
        "bench",
        "--scale",
        "0.02",
        "--repeats",
        "1",
        "--retries",
        "2",
        "--output",
        str(tmp_path / "bench.json"),
        *extra,
    ]


class _DisagreeingExecutor:
    """Stands in for the real Executor: the engines disagree by one row."""

    def __init__(self, database, engine="row"):
        self._engine = engine

    def count(self, plan):
        return SimpleNamespace(count=0 if self._engine == "row" else 1)


class TestEngineDisagreementGuard:
    def test_guard_trips_and_exits_one(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr("repro.analysis.bench.Executor", _DisagreeingExecutor)
        code = main(_bench_args(tmp_path))
        captured = capsys.readouterr()
        assert code == 1
        assert "engine disagreement" in captured.err
        # The guard fires before any report is assembled.
        assert not (tmp_path / "bench.json").exists()

    def test_guard_names_the_prefix_and_counts(self, monkeypatch):
        monkeypatch.setattr("repro.analysis.bench.Executor", _DisagreeingExecutor)
        with pytest.raises(BenchmarkError) as excinfo:
            run_execution_bench(scale=0.02, repeats=1, sweep=False)
        message = str(excinfo.value)
        assert "row=0" in message and "columnar=1" in message


class TestMinSpeedupGate:
    def test_unreachable_floor_exits_one_but_writes_report(
        self, tmp_path, capsys
    ):
        code = main(_bench_args(tmp_path, "--min-speedup", "1e9"))
        captured = capsys.readouterr()
        assert code == 1
        assert "FAIL" in captured.err
        report = json.loads((tmp_path / "bench.json").read_text())
        assert report["overall"]["speedup"] > 0

    def test_trivial_floor_exits_zero(self, tmp_path, capsys):
        code = main(_bench_args(tmp_path, "--min-speedup", "0.0"))
        capsys.readouterr()
        assert code == 0


class TestExitContract:
    def test_invalid_repeats_is_runtime_error_one(self, tmp_path, capsys):
        code = main(_bench_args(tmp_path, "--repeats", "0"))
        captured = capsys.readouterr()
        assert code == 1
        assert "error" in captured.err

    def test_invalid_repeats_raises_benchmark_error(self):
        with pytest.raises(BenchmarkError):
            run_execution_bench(repeats=0)

    def test_usage_error_is_exit_two(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(_bench_args(tmp_path, "--repeats"))  # missing value
        assert excinfo.value.code == 2

    def test_lint_usage_error_is_exit_two(self, tmp_path, capsys):
        code = main(["lint", str(tmp_path / "does-not-exist.py")])
        captured = capsys.readouterr()
        assert code == 2
        assert "usage error" in captured.err

    def test_clean_bench_exits_zero(self, tmp_path, capsys):
        code = main(_bench_args(tmp_path))
        capsys.readouterr()
        assert code == 0


class TestPartialFailureExitThree:
    def test_degraded_sweep_exits_three_with_partial_notice(
        self, tmp_path, capsys
    ):
        DEFAULT_TRUTH_CACHE.clear()  # a warm cache would answer before the deadline
        code = main(_sweep_args(tmp_path, "--timeout", "1e-9"))
        captured = capsys.readouterr()
        assert code == 3
        assert "PARTIAL" in captured.err
        report = json.loads((tmp_path / "bench.json").read_text())
        sweep = report["parallel_sweep"]
        assert sweep["degraded_count"] == sweep["workloads"]
        assert "degraded" in captured.out  # the rendered summary says so too

    def test_generous_timeout_keeps_the_sweep_clean(self, tmp_path, capsys):
        code = main(_sweep_args(tmp_path, "--timeout", "120"))
        capsys.readouterr()
        assert code == 0
        report = json.loads((tmp_path / "bench.json").read_text())
        assert report["parallel_sweep"]["degraded_count"] == 0

    def test_checkpoint_file_records_every_sweep_payload(self, tmp_path, capsys):
        checkpoint = tmp_path / "sweep.jsonl"
        code = main(_sweep_args(tmp_path, "--checkpoint", str(checkpoint)))
        capsys.readouterr()
        assert code == 0
        lines = [
            line for line in checkpoint.read_text().splitlines() if line.strip()
        ]
        report = json.loads((tmp_path / "bench.json").read_text())
        assert len(lines) == report["parallel_sweep"]["workloads"]
        # A restart skips the completed payloads: no new lines appear.
        code = main(_sweep_args(tmp_path, "--checkpoint", str(checkpoint)))
        capsys.readouterr()
        assert code == 0
        again = [
            line for line in checkpoint.read_text().splitlines() if line.strip()
        ]
        assert again == lines

    def test_report_carries_truth_cache_stats(self, tmp_path, capsys):
        code = main(_bench_args(tmp_path))
        capsys.readouterr()
        assert code == 0
        report = json.loads((tmp_path / "bench.json").read_text())
        for prefix in report["prefixes"]:
            stats = prefix["truth_cache"]
            assert set(stats) == {
                "hits",
                "misses",
                "evictions",
                "corruptions",
                "lookups",
            }
            assert stats["hits"] >= 1  # the cached-truth timing loop hit
