"""Error paths of ``repro-els bench`` and the documented exit contract.

The CLI promises three exit codes: ``0`` clean, ``1`` runtime failure
(:class:`~repro.errors.ReproError`, including a failed ``--min-speedup``
gate), ``2`` usage error.  These tests pin the bench-specific failure
modes: the engine-disagreement guard, the speedup gate, and invalid
repeat counts.
"""

import json
from types import SimpleNamespace

import pytest

from repro.analysis.bench import run_execution_bench
from repro.cli import main
from repro.errors import BenchmarkError


def _bench_args(tmp_path, *extra):
    return [
        "bench",
        "--scale",
        "0.02",
        "--repeats",
        "1",
        "--no-sweep",
        "--output",
        str(tmp_path / "bench.json"),
        *extra,
    ]


class _DisagreeingExecutor:
    """Stands in for the real Executor: the engines disagree by one row."""

    def __init__(self, database, engine="row"):
        self._engine = engine

    def count(self, plan):
        return SimpleNamespace(count=0 if self._engine == "row" else 1)


class TestEngineDisagreementGuard:
    def test_guard_trips_and_exits_one(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr("repro.analysis.bench.Executor", _DisagreeingExecutor)
        code = main(_bench_args(tmp_path))
        captured = capsys.readouterr()
        assert code == 1
        assert "engine disagreement" in captured.err
        # The guard fires before any report is assembled.
        assert not (tmp_path / "bench.json").exists()

    def test_guard_names_the_prefix_and_counts(self, monkeypatch):
        monkeypatch.setattr("repro.analysis.bench.Executor", _DisagreeingExecutor)
        with pytest.raises(BenchmarkError) as excinfo:
            run_execution_bench(scale=0.02, repeats=1, sweep=False)
        message = str(excinfo.value)
        assert "row=0" in message and "columnar=1" in message


class TestMinSpeedupGate:
    def test_unreachable_floor_exits_one_but_writes_report(
        self, tmp_path, capsys
    ):
        code = main(_bench_args(tmp_path, "--min-speedup", "1e9"))
        captured = capsys.readouterr()
        assert code == 1
        assert "FAIL" in captured.err
        report = json.loads((tmp_path / "bench.json").read_text())
        assert report["overall"]["speedup"] > 0

    def test_trivial_floor_exits_zero(self, tmp_path, capsys):
        code = main(_bench_args(tmp_path, "--min-speedup", "0.0"))
        capsys.readouterr()
        assert code == 0


class TestExitContract:
    def test_invalid_repeats_is_runtime_error_one(self, tmp_path, capsys):
        code = main(_bench_args(tmp_path, "--repeats", "0"))
        captured = capsys.readouterr()
        assert code == 1
        assert "error" in captured.err

    def test_invalid_repeats_raises_benchmark_error(self):
        with pytest.raises(BenchmarkError):
            run_execution_bench(repeats=0)

    def test_usage_error_is_exit_two(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(_bench_args(tmp_path, "--repeats"))  # missing value
        assert excinfo.value.code == 2

    def test_lint_usage_error_is_exit_two(self, tmp_path, capsys):
        code = main(["lint", str(tmp_path / "does-not-exist.py")])
        captured = capsys.readouterr()
        assert code == 2
        assert "usage error" in captured.err

    def test_clean_bench_exits_zero(self, tmp_path, capsys):
        code = main(_bench_args(tmp_path))
        capsys.readouterr()
        assert code == 0
