"""Tests for the ELS5xx concurrency-safety layer.

Covers the ``guarded_by=``/``blocking=`` directive grammar (ELS500
positive/negative), every diagnostic code ELS501-ELS507 with positive
*and* negative snippets, the interprocedural blocking/held-lock
fixpoints (blocking helper called transitively from ``async def``, a
lock-order cycle spanning two modules), the dogfooded true positives
(pre-fix ``TruthCache``/pool shapes), and the engine integration
(``concurrency=`` flag, ``# els: noqa[ELS5xx]`` + ELS199).
"""

import ast
import textwrap

from repro.lint.concurrency import (
    CONCURRENCY_CODES,
    analyze_modules,
    analyze_source,
    is_lock_name,
)
from repro.lint.dataflow.annotations import parse_directives
from repro.lint.engine import lint_source


def codes(source):
    return [d.code for d in analyze_source(textwrap.dedent(source))]


def findings(source):
    return analyze_source(textwrap.dedent(source))


class _FakeModule:
    def __init__(self, path, source):
        self.path = path
        self.source = textwrap.dedent(source)
        self.tree = ast.parse(self.source)
        self.is_test_file = False


class TestDirectiveParsing:
    def test_valid_guarded_by(self):
        directives, malformed = parse_directives(
            "self._entries = {}  # els: guarded_by=_lock\n"
        )
        assert malformed == []
        assert directives[0].kind == "guarded_by"
        assert directives[0].lock == "_lock"

    def test_valid_blocking_aliases(self):
        for spelling, value in (("yes", True), ("no", False), ("true", True)):
            directives, malformed = parse_directives(
                f"def f():  # els: blocking={spelling}\n    pass\n"
            )
            assert malformed == []
            assert directives[0].kind == "blocking"
            assert directives[0].blocking is value

    def test_invalid_lock_name_is_concurrency_family(self):
        _, malformed = parse_directives("x = {}  # els: guarded_by=a.b\n")
        assert len(malformed) == 1
        assert malformed[0].family == "concurrency"

    def test_unknown_blocking_value_is_concurrency_family(self):
        _, malformed = parse_directives(
            "def f():  # els: blocking=maybe\n    pass\n"
        )
        assert malformed[0].family == "concurrency"

    def test_is_lock_name(self):
        assert is_lock_name("_lock")
        assert is_lock_name("cache_mutex")
        assert not is_lock_name("entries")


class TestELS500:
    def test_malformed_directive_fires(self):
        assert "ELS500" in codes("x = {}  # els: guarded_by=a.b\n")

    def test_misplaced_blocking_fires(self):
        assert "ELS500" in codes(
            """
            def f():
                x = 1  # els: blocking=yes
                return x
            """
        )

    def test_guard_without_matching_assignment_fires(self):
        assert "ELS500" in codes(
            """
            def f():
                return 1  # els: guarded_by=_lock
            """
        )

    def test_guard_naming_unknown_lock_fires(self):
        assert "ELS500" in codes(
            """
            class C:
                def __init__(self):
                    self._entries = {}  # els: guarded_by=_lock
            """
        )

    def test_wellformed_guard_is_clean(self):
        assert codes(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}  # els: guarded_by=_lock
            """
        ) == []

    def test_module_level_guard_is_clean(self):
        assert codes(
            """
            import threading

            _LOCK = threading.Lock()
            _STATE = {}  # els: guarded_by=_LOCK
            """
        ) == []


class TestELS501:
    GUARDED_CLASS = """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._entries = {}  # els: guarded_by=_lock
    """

    def test_unguarded_mutation_fires(self):
        assert "ELS501" in codes(
            self.GUARDED_CLASS
            + """
            def put(self, k, v):
                self._entries[k] = v
            """
        )

    def test_unguarded_mutator_method_fires(self):
        assert "ELS501" in codes(
            self.GUARDED_CLASS
            + """
            def drop(self, k):
                self._entries.pop(k, None)
            """
        )

    def test_mutation_under_with_lock_is_clean(self):
        assert codes(
            self.GUARDED_CLASS
            + """
            def put(self, k, v):
                with self._lock:
                    self._entries[k] = v
            """
        ) == []

    def test_mutation_under_acquire_release_is_clean(self):
        assert codes(
            self.GUARDED_CLASS
            + """
            def put(self, k, v):
                self._lock.acquire()
                self._entries[k] = v
                self._lock.release()
            """
        ) == []

    def test_helper_called_only_under_lock_is_clean(self):
        """Top-down inherited-locks fixpoint: a private helper invoked
        exclusively under the lock inherits the guarantee."""
        assert codes(
            self.GUARDED_CLASS
            + """
            def put(self, k, v):
                with self._lock:
                    self._store(k, v)

            def _store(self, k, v):
                self._entries[k] = v
            """
        ) == []

    def test_helper_with_one_unlocked_caller_fires(self):
        assert "ELS501" in codes(
            self.GUARDED_CLASS
            + """
            def put(self, k, v):
                with self._lock:
                    self._store(k, v)

            def put_fast(self, k, v):
                self._store(k, v)

            def _store(self, k, v):
                self._entries[k] = v
            """
        )

    def test_module_global_guard_fires(self):
        assert "ELS501" in codes(
            """
            import threading

            _LOCK = threading.Lock()
            _STATE = {}  # els: guarded_by=_LOCK

            def record(k, v):
                _STATE[k] = v
            """
        )

    def test_augassign_through_attribute_fires(self):
        assert "ELS501" in codes(
            self.GUARDED_CLASS.replace("_entries = {}", "stats = Stats()")
            + """
            def touch(self):
                self.stats.hits += 1
            """
        )

    def test_read_access_is_not_a_mutation(self):
        assert codes(
            self.GUARDED_CLASS
            + """
            def peek(self, k):
                return self._entries.get(k)
            """
        ) == []

    def test_pre_fix_truthcache_shape_fires(self):
        """The dogfooded true positive: the pre-PR TruthCache mutated its
        LRU map and stats with no lock at all."""
        diagnostics = findings(
            """
            import threading

            class TruthCache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}  # els: guarded_by=_lock

                def get(self, key):
                    entry = self._entries.get(key)
                    if entry is None:
                        return None
                    self._entries.pop(key, None)
                    return entry
            """
        )
        assert [d.code for d in diagnostics] == ["ELS501"]
        assert "_entries" in diagnostics[0].message


class TestELS502:
    def test_opposite_orders_fire(self):
        found = codes(
            """
            import threading

            lock_a = threading.Lock()
            lock_b = threading.Lock()

            def one():
                with lock_a:
                    with lock_b:
                        pass

            def two():
                with lock_b:
                    with lock_a:
                        pass
            """
        )
        assert found.count("ELS502") == 2

    def test_consistent_order_is_clean(self):
        assert codes(
            """
            import threading

            lock_a = threading.Lock()
            lock_b = threading.Lock()

            def one():
                with lock_a:
                    with lock_b:
                        pass

            def two():
                with lock_a:
                    with lock_b:
                        pass
            """
        ) == []

    def test_cross_module_cycle_fires(self):
        """Interprocedural: module one takes A then calls into module two,
        which takes B then calls a helper taking A — via the bottom-up
        acquires summary."""
        module_one = _FakeModule(
            "one.py",
            """
            import threading

            lock_a = threading.Lock()

            def outer():
                with lock_a:
                    middle()
            """,
        )
        module_two = _FakeModule(
            "two.py",
            """
            import threading

            lock_b = threading.Lock()

            def middle():
                with lock_b:
                    inner()

            def inner():
                from one import lock_a
                with lock_a:
                    pass
            """,
        )
        found = [d.code for d in analyze_modules([module_one, module_two])]
        assert "ELS502" in found

    def test_reentrant_same_lock_is_not_an_edge(self):
        assert codes(
            """
            import threading

            lock_a = threading.RLock()

            def f():
                with lock_a:
                    with lock_a:
                        pass
            """
        ) == []


class TestELS503:
    def test_time_sleep_in_async_fires(self):
        assert "ELS503" in codes(
            """
            import time

            async def f():
                time.sleep(1)
            """
        )

    def test_subprocess_in_async_fires(self):
        assert "ELS503" in codes(
            """
            import subprocess

            async def f():
                subprocess.run(["ls"])
            """
        )

    def test_path_io_in_async_fires(self):
        assert "ELS503" in codes(
            """
            async def f(path):
                return path.read_text()
            """
        )

    def test_blocking_helper_called_transitively_fires(self):
        """Interprocedural: async -> sync wrapper -> sync sleeper."""
        assert "ELS503" in codes(
            """
            import time

            def sleeper():
                time.sleep(1)

            def wrapper():
                sleeper()

            async def f():
                wrapper()
            """
        )

    def test_blocking_no_pin_silences_transitive_report(self):
        assert codes(
            """
            import time

            def wrapper():  # els: blocking=no
                pass

            async def f():
                wrapper()
            """
        ) == []

    def test_deadline_busy_wait_fires(self):
        assert "ELS503" in codes(
            """
            async def spin(deadline):
                while True:
                    if deadline.check():
                        break
            """
        )

    def test_loop_with_await_is_clean(self):
        assert codes(
            """
            import asyncio

            async def poll(deadline):
                while not deadline.expired():
                    await asyncio.sleep(0.01)
            """
        ) == []

    def test_sync_function_may_block(self):
        assert codes(
            """
            import time

            def f():
                time.sleep(1)
            """
        ) == []


class TestELS504:
    def test_sleep_under_lock_fires(self):
        assert "ELS504" in codes(
            """
            import threading
            import time

            _LOCK = threading.Lock()

            def f():
                with _LOCK:
                    time.sleep(0.5)
            """
        )

    def test_await_under_sync_lock_fires(self):
        assert "ELS504" in codes(
            """
            import asyncio
            import threading

            _LOCK = threading.Lock()

            async def f():
                with _LOCK:
                    await asyncio.sleep(0)
            """
        )

    def test_async_lock_across_await_is_clean(self):
        assert codes(
            """
            import asyncio

            async def f(lock):
                async with lock:
                    await asyncio.sleep(0)
            """
        ) == []

    def test_blocking_callee_under_lock_fires(self):
        assert "ELS504" in codes(
            """
            import threading
            import time

            _LOCK = threading.Lock()

            def slow():
                time.sleep(1)

            def f():
                with _LOCK:
                    slow()
            """
        )

    def test_sleep_after_release_is_clean(self):
        assert codes(
            """
            import threading
            import time

            _LOCK = threading.Lock()

            def f():
                with _LOCK:
                    pass
                time.sleep(0.5)
            """
        ) == []


class TestELS505:
    def test_missing_unlink_on_creator_fires(self):
        found = findings(
            """
            from multiprocessing.shared_memory import SharedMemory

            def f(name):
                shm = SharedMemory(name=name, create=True, size=64)
                shm.buf[0] = 1
                shm.close()
            """
        )
        assert [d.code for d in found] == ["ELS505"]
        assert "unlink" in found[0].message

    def test_missing_close_on_early_return_fires(self):
        assert "ELS505" in codes(
            """
            from multiprocessing.shared_memory import SharedMemory

            def f(name, fast):
                shm = SharedMemory(name=name)
                if fast:
                    return None
                value = shm.buf[0]
                shm.close()
                return value
            """
        )

    def test_finally_close_covers_every_path(self):
        assert codes(
            """
            from multiprocessing.shared_memory import SharedMemory

            def f(name, fast):
                shm = SharedMemory(name=name, create=True, size=64)
                try:
                    if fast:
                        return None
                    return shm.buf[0]
                finally:
                    shm.close()
                    shm.unlink()
            """
        ) == []

    def test_attachment_needs_no_unlink(self):
        assert codes(
            """
            from multiprocessing.shared_memory import SharedMemory

            def f(name):
                shm = SharedMemory(name=name)
                value = shm.buf[0]
                shm.close()
                return value
            """
        ) == []

    def test_returned_handle_is_exempt(self):
        assert codes(
            """
            from multiprocessing.shared_memory import SharedMemory

            def f(name):
                shm = SharedMemory(name=name, create=True, size=64)
                return shm
            """
        ) == []


class TestELS506:
    def test_pre_fix_harness_shape_fires(self):
        """The dogfooded true positive: a bare pool whose exception path
        skips join() leaks the dead workers before the re-spawn."""
        found = findings(
            """
            from multiprocessing import Pool

            def sweep(payloads):
                outcomes = []
                pool = Pool(4)
                try:
                    for outcome in pool.imap_unordered(str, payloads):
                        outcomes.append(outcome)
                except Exception:
                    pass
                return outcomes
            """
        )
        assert [d.code for d in found] == ["ELS506"]
        assert "join" in found[0].message

    def test_terminate_join_in_finally_is_clean(self):
        assert codes(
            """
            from multiprocessing import Pool

            def sweep(payloads):
                outcomes = []
                pool = Pool(4)
                try:
                    for outcome in pool.imap_unordered(str, payloads):
                        outcomes.append(outcome)
                except Exception:
                    pass
                finally:
                    pool.terminate()
                    pool.join()
                return outcomes
            """
        ) == []

    def test_context_manager_pool_is_clean(self):
        assert codes(
            """
            from multiprocessing import Pool

            def sweep(payloads):
                with Pool(4) as pool:
                    return pool.map(str, payloads)
            """
        ) == []

    def test_executor_without_shutdown_fires(self):
        assert "ELS506" in codes(
            """
            from concurrent.futures import ThreadPoolExecutor

            def f(items):
                executor = ThreadPoolExecutor(4)
                return [executor.submit(str, item) for item in items]
            """
        )

    def test_executor_with_shutdown_is_clean(self):
        assert codes(
            """
            from concurrent.futures import ThreadPoolExecutor

            def f(items):
                executor = ThreadPoolExecutor(4)
                try:
                    return [executor.submit(str, item) for item in items]
                finally:
                    executor.shutdown()
            """
        ) == []


class TestELS507:
    def test_worker_mutating_module_global_warns(self):
        found = findings(
            """
            from multiprocessing import Pool

            _RESULTS = {}

            def worker(item):
                _RESULTS[item] = item * 2
                return item

            def drive(items):
                with Pool(2) as pool:
                    return pool.map(worker, items)
            """
        )
        assert [d.code for d in found] == ["ELS507"]
        assert found[0].severity.value == "warning"

    def test_transitively_reached_mutation_warns(self):
        assert "ELS507" in codes(
            """
            from multiprocessing import Pool

            _RESULTS = {}

            def record(item):
                _RESULTS[item] = item

            def worker(item):
                record(item)
                return item

            def drive(items):
                with Pool(2) as pool:
                    return pool.map(worker, items)
            """
        )

    def test_pure_worker_is_clean(self):
        assert codes(
            """
            from multiprocessing import Pool

            def worker(item):
                return item * 2

            def drive(items):
                with Pool(2) as pool:
                    return pool.map(worker, items)
            """
        ) == []

    def test_unshipped_mutator_is_clean(self):
        assert codes(
            """
            _RESULTS = {}

            def record(item):
                _RESULTS[item] = item
            """
        ) == []


class TestSummaries:
    def test_blocking_propagates_bottom_up(self):
        assert "ELS503" in codes(
            """
            import time

            def a():
                time.sleep(1)

            def b():
                a()

            def c():
                b()

            async def f():
                c()
            """
        )

    def test_acquires_union_propagates(self):
        """Lock order via a callee's transitive acquisition."""
        found = codes(
            """
            import threading

            lock_a = threading.Lock()
            lock_b = threading.Lock()

            def take_b():
                with lock_b:
                    pass

            def ab():
                with lock_a:
                    take_b()

            def ba():
                with lock_b:
                    with lock_a:
                        pass
            """
        )
        assert "ELS502" in found


class TestEngineIntegration:
    def test_concurrency_flag_off_by_default(self):
        source = textwrap.dedent(
            """
            import time

            async def f():
                time.sleep(1)
            """
        )
        assert all(
            d.code != "ELS503" for d in lint_source(source, path="mod.py")
        )

    def test_concurrency_flag_on(self):
        source = textwrap.dedent(
            """
            import time

            async def f():
                time.sleep(1)
            """
        )
        found = lint_source(source, path="mod.py", concurrency=True)
        assert any(d.code == "ELS503" for d in found)

    def test_noqa_suppresses_els5xx(self):
        source = textwrap.dedent(
            """
            import time

            async def f():
                time.sleep(1)  # els: noqa[ELS503]
            """
        )
        found = lint_source(source, path="mod.py", concurrency=True)
        assert all(d.code != "ELS503" for d in found)

    def test_unused_els5_suppression_reports_els199(self):
        source = textwrap.dedent(
            """
            async def f():
                return 1  # els: noqa[ELS503]
            """
        )
        found = lint_source(source, path="mod.py", concurrency=True)
        assert any(d.code == "ELS199" for d in found)

    def test_test_files_are_skipped(self):
        module = _FakeModule(
            "test_example.py",
            """
            import time

            async def f():
                time.sleep(1)
            """,
        )
        module.is_test_file = True
        assert analyze_modules([module]) == []

    def test_every_code_has_metadata(self):
        assert set(CONCURRENCY_CODES) == {
            f"ELS50{i}" for i in range(8)
        }
        for summary, severity in CONCURRENCY_CODES.values():
            assert summary
            assert severity.value in ("error", "warning")
