"""Deadline primitive and its cooperative checks inside the executors."""

import random

import pytest

from repro.analysis import TruthCache, execute_query, true_join_size
from repro.errors import DeadlineExceededError
from repro.execution.executor import Executor
from repro.resilience import Deadline
from repro.workloads import build_database, chain_workload


class FakeClock:
    """A manually advanced monotonic clock for deterministic expiry."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def chain():
    workload = chain_workload(3, random.Random(0))
    database = build_database(workload.specs, seed=0)
    return workload.query, database


class TestDeadlineUnit:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_rejects_nonfinite_budget(self):
        with pytest.raises(ValueError):
            Deadline(float("inf"))
        with pytest.raises(ValueError):
            Deadline(float("nan"))

    def test_rejects_nonpositive_tick_interval(self):
        with pytest.raises(ValueError):
            Deadline(1.0, tick_interval=0)

    def test_remaining_and_expiry_track_the_clock(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.budget_s == 2.0
        assert deadline.remaining_s() == 2.0
        assert not deadline.expired()
        clock.advance(1.5)
        assert deadline.remaining_s() == 0.5
        clock.advance(1.0)
        assert deadline.expired()

    def test_check_raises_structured_error(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        deadline.check("scan(T1)")  # within budget: no raise
        clock.advance(3.0)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("scan(T1)")
        error = excinfo.value
        assert error.budget_s == 1.0
        assert error.elapsed_s == 3.0
        assert error.label == "scan(T1)"
        assert "scan(T1)" in str(error)

    def test_tick_only_reads_clock_at_interval(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock, tick_interval=10)
        clock.advance(5.0)  # already expired, but ticks below the interval
        for _ in range(9):
            deadline.tick(1)
        with pytest.raises(DeadlineExceededError):
            deadline.tick(1)  # the tenth tick reads the clock

    def test_tick_accepts_bulk_counts(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock, tick_interval=100)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceededError):
            deadline.tick(1000, "hash-join")


class TestExecutorDeadline:
    @pytest.mark.parametrize("engine", ["row", "columnar"])
    def test_expired_deadline_aborts_execution(self, chain, engine):
        query, database = chain
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(5.0)
        with pytest.raises(DeadlineExceededError):
            true_join_size(
                query, database, engine=engine, cache=None, deadline=deadline
            )

    @pytest.mark.parametrize("engine", ["row", "columnar"])
    def test_generous_deadline_does_not_change_the_count(self, chain, engine):
        query, database = chain
        bounded = true_join_size(
            query, database, engine=engine, cache=None, timeout_s=60.0
        )
        unbounded = true_join_size(query, database, engine=engine, cache=None)
        assert bounded == unbounded

    def test_tiny_timeout_aborts_with_real_clock(self, chain):
        query, database = chain
        with pytest.raises(DeadlineExceededError):
            true_join_size(query, database, cache=None, timeout_s=1e-9)

    def test_execute_query_honors_timeout(self, chain):
        query, database = chain
        with pytest.raises(DeadlineExceededError):
            execute_query(query, database, timeout_s=1e-9)

    def test_executor_accepts_explicit_deadline(self, chain):
        query, database = chain
        from repro.analysis import build_reference_plan

        plan = build_reference_plan(query, database)
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        executor = Executor(database, engine="columnar", deadline=deadline)
        with pytest.raises(DeadlineExceededError):
            executor.count(plan)

    def test_cache_hit_bypasses_the_deadline(self, chain):
        query, database = chain
        cache = TruthCache()
        expected = true_join_size(query, database, cache=cache)
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(10.0)  # expired before the call
        answered = true_join_size(
            query, database, cache=cache, deadline=deadline
        )
        assert answered == expected
        assert cache.stats.hits == 1

    def test_shared_deadline_spans_multiple_executions(self, chain):
        query, database = chain
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        first = true_join_size(query, database, cache=None, deadline=deadline)
        assert first >= 0
        clock.advance(5.0)  # budget spent between calls
        with pytest.raises(DeadlineExceededError):
            true_join_size(query, database, cache=None, deadline=deadline)
