"""Distribution generator tests: exact cardinalities, shapes, determinism."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import key_column, uniform_column, zipf_column, zipf_weights


def rng(seed=0):
    return np.random.default_rng(seed)


class TestUniformColumn:
    def test_exact_distinct_count(self):
        values = uniform_column(1000, 100, rng())
        assert len(values) == 1000
        assert len(set(values)) == 100

    def test_equifrequent_when_divisible(self):
        """The paper's uniformity assumption, realized exactly."""
        values = uniform_column(1000, 100, rng())
        counts = {}
        for v in values:
            counts[v] = counts.get(v, 0) + 1
        assert set(counts.values()) == {10}

    def test_near_equifrequent_with_remainder(self):
        values = uniform_column(1005, 100, rng())
        counts = {}
        for v in values:
            counts[v] = counts.get(v, 0) + 1
        assert set(counts.values()) <= {10, 11}

    def test_domain_starts_at_low(self):
        values = uniform_column(100, 10, rng(), low=500)
        assert min(values) == 500 and max(values) == 509

    def test_deterministic_under_seed(self):
        assert uniform_column(100, 10, rng(7)) == uniform_column(100, 10, rng(7))

    def test_zero_rows(self):
        assert uniform_column(0, 10, rng()) == []

    def test_distinct_exceeding_rows_rejected(self):
        with pytest.raises(WorkloadError):
            uniform_column(5, 10, rng())

    def test_negative_rows_rejected(self):
        with pytest.raises(WorkloadError):
            uniform_column(-1, 1, rng())

    def test_key_column_case(self):
        values = uniform_column(100, 100, rng())
        assert sorted(values) == list(range(1, 101))


class TestZipfColumn:
    def test_exact_distinct_count_guaranteed(self):
        values = zipf_column(1000, 50, 1.5, rng())
        assert len(set(values)) == 50

    def test_skew_concentrates_mass(self):
        values = zipf_column(10000, 100, 1.5, rng())
        counts = {}
        for v in values:
            counts[v] = counts.get(v, 0) + 1
        top = max(counts.values())
        assert top > 10000 / 100 * 5  # far above the uniform share

    def test_zero_skew_is_flat_ish(self):
        values = zipf_column(10000, 10, 0.0, rng())
        counts = [values.count(v) for v in set(values)]
        assert max(counts) < 2 * min(counts)

    def test_negative_skew_rejected(self):
        with pytest.raises(WorkloadError):
            zipf_weights(10, -1.0)

    def test_weights_normalized_and_decreasing(self):
        weights = zipf_weights(100, 1.0)
        assert weights.sum() == pytest.approx(1.0)
        assert all(weights[i] >= weights[i + 1] for i in range(99))

    def test_domain_offset(self):
        values = zipf_column(100, 10, 1.0, rng(), low=1000)
        assert min(values) >= 1000 and max(values) <= 1009


class TestKeyColumn:
    def test_all_distinct(self):
        values = key_column(100)
        assert sorted(values) == list(range(1, 101))

    def test_shuffled_with_rng(self):
        values = key_column(100, rng())
        assert sorted(values) == list(range(1, 101))
        assert values != sorted(values)  # astronomically unlikely to be sorted
