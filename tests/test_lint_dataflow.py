"""Tests for the ELS3xx quantity-dimension dataflow layer.

Covers the lattice transfer rules, the ``# els:`` directive parser, the
CFG builder, every diagnostic code ELS300-ELS306 (positive and negative
snippets), interprocedural summary propagation, fixpoint termination on
loop-heavy code, and the engine integration (suppressions, ELS199, the
``dataflow=`` flag of ``lint_source``/``lint_paths``).
"""

import ast

import pytest

from repro.lint.dataflow import (
    BOTTOM,
    Quantity,
    TOP,
    analyze_modules,
    analyze_source,
    binary_transfer,
    build_cfg,
    constant_value,
    join_values,
    min_max_transfer,
    parse_directives,
    quantity_from_name,
    seeded,
)
from repro.lint.engine import lint_source


def codes(source, **kwargs):
    return [d.code for d in analyze_source(source)]


def sel():
    return seeded(Quantity.SELECTIVITY)


def card():
    return seeded(Quantity.CARDINALITY)


def distinct():
    return seeded(Quantity.DISTINCT_COUNT)


class TestLattice:
    def test_selectivity_times_cardinality_is_cardinality(self):
        value, code = binary_transfer(ast.Mult(), sel(), card())
        assert value.quantity is Quantity.CARDINALITY
        assert code is None

    def test_cardinality_over_distinct_is_cardinality(self):
        value, code = binary_transfer(ast.Div(), card(), distinct())
        assert value.quantity is Quantity.CARDINALITY
        assert code is None

    def test_selectivity_plus_cardinality_is_els301(self):
        _, code = binary_transfer(ast.Add(), sel(), card())
        assert code == "ELS301"

    def test_cardinality_times_distinct_is_els304(self):
        _, code = binary_transfer(ast.Mult(), card(), distinct())
        assert code == "ELS304"

    def test_selectivity_sum_is_unbounded_ratio(self):
        value, code = binary_transfer(ast.Add(), sel(), sel())
        assert value.quantity is Quantity.RATIO
        assert not value.le_one
        assert code is None

    def test_top_operand_never_fires(self):
        _, code = binary_transfer(ast.Add(), TOP, card())
        assert code is None

    def test_constant_folding(self):
        value, _ = binary_transfer(
            ast.Mult(), constant_value(0.5), constant_value(4)
        )
        assert value.const == 2.0

    def test_constant_over_distinct_is_eq2_selectivity(self):
        value, code = binary_transfer(ast.Div(), constant_value(1.0), distinct())
        assert value.quantity is Quantity.SELECTIVITY
        assert value.bounded
        assert code is None

    def test_join_of_different_quantities_is_top(self):
        assert join_values(sel(), card()).quantity is Quantity.TOP

    def test_join_with_bottom_is_identity(self):
        assert join_values(BOTTOM, sel()) == sel()

    def test_min_of_distinct_and_cardinality_is_row_cap(self):
        value = min_max_transfer([distinct(), card()])
        assert value.quantity is Quantity.DISTINCT_COUNT


class TestDirectives:
    def test_quantity_directive(self):
        directives, malformed = parse_directives(
            "x = lookup()  # els: quantity=selectivity\n"
        )
        assert malformed == []
        assert directives[0].kind == "quantity"
        assert directives[0].quantity is Quantity.SELECTIVITY

    def test_noqa_with_codes(self):
        directives, _ = parse_directives("bad()  # els: noqa[ELS101, ELS303]\n")
        assert directives[0].codes == frozenset({"ELS101", "ELS303"})

    def test_blanket_noqa(self):
        directives, _ = parse_directives("bad()  # els: noqa\n")
        assert directives[0].codes is None

    def test_malformed_directive_reported(self):
        _, malformed = parse_directives("x = 1  # els: frobnicate\n")
        assert len(malformed) == 1
        assert "unrecognized" in malformed[0].reason

    def test_unknown_quantity_reported(self):
        _, malformed = parse_directives("x = 1  # els: quantity=furlongs\n")
        assert "unknown quantity" in malformed[0].reason

    def test_marker_inside_string_is_ignored(self):
        directives, malformed = parse_directives('msg = "# els: noqa"\n')
        assert directives == [] and malformed == []

    def test_marker_in_prose_comment_is_ignored(self):
        source = "# the directive form is written as '# els: noqa' inline\n"
        directives, malformed = parse_directives(source)
        assert directives == [] and malformed == []


class TestNaming:
    @pytest.mark.parametrize(
        "name,quantity",
        [
            ("sel_eq", Quantity.SELECTIVITY),
            ("join_selectivity", Quantity.SELECTIVITY),
            ("match_fraction", Quantity.SELECTIVITY),
            ("d_x", Quantity.DISTINCT_COUNT),
            ("left_distinct", Quantity.DISTINCT_COUNT),
            ("n_rows", Quantity.CARDINALITY),
            ("row_count", Quantity.CARDINALITY),
            ("output_cardinality", Quantity.CARDINALITY),
        ],
    )
    def test_convention(self, name, quantity):
        assert quantity_from_name(name) is quantity

    def test_neutral_names_have_no_opinion(self):
        assert quantity_from_name("value") is None
        assert quantity_from_name("table") is None


class TestCfg:
    def test_if_produces_join_point(self):
        tree = ast.parse(
            "def f(a):\n"
            "    if a:\n"
            "        x = 1\n"
            "    else:\n"
            "        x = 2\n"
            "    return x\n"
        )
        cfg = build_cfg(tree.body[0])
        preds = cfg.predecessors()
        # Some block (the after-if join) must have two predecessors.
        assert any(len(p) == 2 for p in preds.values())

    def test_loop_has_back_edge(self):
        tree = ast.parse(
            "def f(items):\n"
            "    total = 0\n"
            "    for item in items:\n"
            "        total = total + item\n"
            "    return total\n"
        )
        cfg = build_cfg(tree.body[0])
        # A back edge targets a block that appears earlier in creation order.
        assert any(
            succ <= block.block_id
            for block in cfg.blocks.values()
            for succ in block.successors
        )


class TestEls300:
    def test_malformed_directive_fires(self):
        assert "ELS300" in codes("x = 1  # els: gibberish\n")

    def test_valid_directive_is_silent(self):
        assert codes("x = 1.0  # els: quantity=selectivity\n") == []


class TestEls301:
    def test_selectivity_plus_cardinality_fires(self):
        source = (
            "def estimate(sel_join, n_rows):\n"
            "    return sel_join + n_rows\n"
        )
        assert codes(source) == ["ELS301"]

    def test_selectivity_times_cardinality_is_silent(self):
        source = (
            "def estimate(sel_join, n_rows):\n"
            "    return sel_join * n_rows\n"
        )
        assert codes(source) == []

    def test_augmented_assignment_fires(self):
        source = (
            "def estimate(sel_join, n_rows):\n"
            "    total = n_rows\n"
            "    total += sel_join\n"
            "    return total\n"
        )
        assert "ELS301" in codes(source)


class TestEls302:
    def test_unclamped_selectivity_sum_fires(self):
        source = (
            "def combined_selectivity(sel_a, sel_b):\n"
            "    return sel_a + sel_b\n"
        )
        assert codes(source) == ["ELS302"]

    def test_clamped_return_is_silent(self):
        source = (
            "def combined_selectivity(sel_a, sel_b):\n"
            "    return max(0.0, min(1.0, sel_a + sel_b))\n"
        )
        assert codes(source) == []

    def test_bounded_product_is_silent(self):
        source = (
            "def combined_selectivity(sel_a, sel_b):\n"
            "    return sel_a * sel_b\n"
        )
        assert codes(source) == []

    def test_out_of_range_constant_fires(self):
        source = (
            "def default_selectivity():\n"
            "    return 1.5\n"
        )
        assert codes(source) == ["ELS302"]


class TestEls303:
    def test_uncoerced_cardinality_fires(self):
        source = (
            "def result_rows(n_rows, sel_p) -> int:\n"
            "    return n_rows * sel_p\n"
        )
        assert codes(source) == ["ELS303"]

    def test_ceil_coercion_is_silent(self):
        source = (
            "import math\n"
            "def result_rows(n_rows, sel_p) -> int:\n"
            "    return int(math.ceil(n_rows * sel_p))\n"
        )
        assert codes(source) == []

    def test_unannotated_function_is_silent(self):
        source = (
            "def result_rows(n_rows, sel_p):\n"
            "    return n_rows * sel_p\n"
        )
        assert codes(source) == []


class TestEls304:
    def test_distinct_times_cardinality_fires(self):
        source = (
            "def combine(d_x, n_rows):\n"
            "    return d_x * n_rows\n"
        )
        assert codes(source) == ["ELS304"]

    def test_eq3_division_is_silent(self):
        source = (
            "def combine(d_x, n_rows):\n"
            "    return n_rows / d_x\n"
        )
        assert codes(source) == []

    def test_row_cap_min_is_silent(self):
        source = (
            "def cap(d_x, n_rows):\n"
            "    return min(d_x, n_rows)\n"
        )
        assert codes(source) == []


class TestEls305:
    def test_nested_min_clamp_fires(self):
        source = (
            "def f(sel_a):\n"
            "    return min(1.0, min(1.0, sel_a * 0.5))\n"
        )
        assert "ELS305" in codes(source)

    def test_nested_max_clamp_fires(self):
        source = (
            "def f(value):\n"
            "    return max(0.0, max(0.0, value))\n"
        )
        assert "ELS305" in codes(source)

    def test_constant_clamp_fires(self):
        source = (
            "def f():\n"
            "    return min(1.0, 0.5)\n"
        )
        assert "ELS305" in codes(source)

    def test_standard_full_clamp_is_silent(self):
        source = (
            "def f(value):\n"
            "    return max(0.0, min(1.0, value))\n"
        )
        assert codes(source) == []

    def test_defensive_clamp_of_assumed_selectivity_is_silent(self):
        source = (
            "def f(sel_a):\n"
            "    return min(1.0, sel_a)\n"
        )
        assert codes(source) == []

    def test_els305_is_a_warning(self):
        source = (
            "def f(value):\n"
            "    return max(0.0, max(0.0, value))\n"
        )
        [diagnostic] = analyze_source(source)
        assert diagnostic.severity.value == "warning"


class TestEls306:
    def test_distinct_passed_as_selectivity_fires(self):
        source = (
            "def scale(sel_f, n_rows):\n"
            "    return sel_f * n_rows\n"
            "def caller(d_col, n_rows):\n"
            "    return scale(d_col, n_rows)\n"
        )
        assert "ELS306" in codes(source)

    def test_keyword_argument_mismatch_fires(self):
        source = (
            "def scale(sel_f, n_rows):\n"
            "    return sel_f * n_rows\n"
            "def caller(d_col, n_rows):\n"
            "    return scale(sel_f=d_col, n_rows=n_rows)\n"
        )
        assert "ELS306" in codes(source)

    def test_matching_call_is_silent(self):
        source = (
            "def scale(sel_f, n_rows):\n"
            "    return sel_f * n_rows\n"
            "def caller(sel_p, n_rows):\n"
            "    return scale(sel_p, n_rows)\n"
        )
        assert codes(source) == []

    def test_unknown_argument_is_silent(self):
        source = (
            "def scale(sel_f, n_rows):\n"
            "    return sel_f * n_rows\n"
            "def caller(opaque, n_rows):\n"
            "    return scale(opaque, n_rows)\n"
        )
        assert codes(source) == []


class _Module:
    """Duck-typed module for multi-file analyze_modules tests."""

    def __init__(self, path, source, is_test_file=False):
        self.path = path
        self.source = source
        self.tree = ast.parse(source)
        self.is_test_file = is_test_file


class TestInterprocedural:
    def test_summary_propagates_across_modules(self):
        producer = _Module(
            "producer.py",
            "def base_selectivity(sel_a, sel_b):\n"
            "    return sel_a * sel_b\n",
        )
        consumer = _Module(
            "consumer.py",
            "from producer import base_selectivity\n"
            "def estimate(n_rows, sel_a, sel_b):\n"
            "    return n_rows + base_selectivity(sel_a, sel_b)\n",
        )
        diagnostics = analyze_modules([producer, consumer])
        assert [d.code for d in diagnostics] == ["ELS301"]
        assert diagnostics[0].file == "consumer.py"

    def test_undeclared_helper_chain_propagates_computed_quantity(self):
        module = _Module(
            "chain.py",
            "def helper(n_rows, sel_p):\n"
            "    return n_rows * sel_p\n"
            "def wrapper(n_rows, sel_p):\n"
            "    return helper(n_rows, sel_p)\n"
            "def bad(n_rows, sel_p, sel_q):\n"
            "    return wrapper(n_rows, sel_p) + sel_q\n",
        )
        diagnostics = analyze_modules([module])
        assert [d.code for d in diagnostics] == ["ELS301"]

    def test_method_resolution_through_self(self):
        module = _Module(
            "cls.py",
            "class Estimator:\n"
            "    def selectivity(self, sel_a, sel_b):\n"
            "        return sel_a * sel_b\n"
            "    def rows(self, n_rows, sel_a, sel_b):\n"
            "        return n_rows + self.selectivity(sel_a, sel_b)\n",
        )
        diagnostics = analyze_modules([module])
        assert [d.code for d in diagnostics] == ["ELS301"]

    def test_test_files_are_skipped(self):
        module = _Module(
            "test_mod.py",
            "def estimate(sel_join, n_rows):\n"
            "    return sel_join + n_rows\n",
            is_test_file=True,
        )
        assert analyze_modules([module]) == []

    def test_recursion_terminates(self):
        module = _Module(
            "rec.py",
            "def even_rows(n_rows):\n"
            "    if n_rows <= 0:\n"
            "        return n_rows\n"
            "    return odd_rows(n_rows - 1)\n"
            "def odd_rows(n_rows):\n"
            "    return even_rows(n_rows - 1)\n",
        )
        assert analyze_modules([module]) == []


class TestSeedingAndOverrides:
    def test_def_line_override_declares_return_quantity(self):
        source = (
            "def lookup(raw):  # els: quantity=selectivity\n"
            "    return raw\n"
            "def estimate(n_rows, raw):\n"
            "    return n_rows + lookup(raw)\n"
        )
        assert "ELS301" in codes(source)

    def test_assignment_override_declares_name_quantity(self):
        source = (
            "def estimate(n_rows, table):\n"
            "    factor = table.lookup()  # els: quantity=selectivity\n"
            "    return n_rows + factor\n"
        )
        assert "ELS301" in codes(source)

    def test_quantity_any_silences_a_name(self):
        source = (
            "def estimate(n_rows, sel_raw):\n"
            "    sel_raw = transform(sel_raw)  # els: quantity=any\n"
            "    return n_rows + sel_raw\n"
        )
        assert codes(source) == []

    def test_attribute_reads_seed_from_name(self):
        source = (
            "def estimate(table, sel_p):\n"
            "    return table.n_rows + sel_p\n"
        )
        assert "ELS301" in codes(source)

    def test_branch_join_loses_conflicting_quantity(self):
        # A name holding a selectivity on one path and a cardinality on the
        # other reads as TOP after the join: no diagnostic either way.
        source = (
            "def estimate(flag, sel_p, n_rows, other_rows):\n"
            "    if flag:\n"
            "        mixed = sel_p\n"
            "    else:\n"
            "        mixed = n_rows\n"
            "    return mixed + other_rows\n"
        )
        assert codes(source) == []


class TestFixpointTermination:
    def test_loop_heavy_function_terminates(self):
        source = (
            "def grind(n_rows, sel_p, d_x, limit):\n"
            "    total = 0.0\n"
            "    acc = n_rows\n"
            "    for outer in range(limit):\n"
            "        while acc > 1:\n"
            "            acc = acc / d_x\n"
            "            for inner in range(outer):\n"
            "                total = total + acc\n"
            "                if total > limit:\n"
            "                    break\n"
            "            else:\n"
            "                continue\n"
            "        acc = acc * sel_p\n"
            "    try:\n"
            "        return total\n"
            "    finally:\n"
            "        pass\n"
        )
        # The point is termination (the worklist must converge despite the
        # nested loop-carried state), not any particular finding.
        analyze_source(source)

    def test_loop_carried_quantity_converges_without_false_positive(self):
        source = (
            "def shrink(n_rows, sel_p, steps):\n"
            "    acc = n_rows\n"
            "    for step in range(steps):\n"
            "        acc = acc * sel_p\n"
            "    return acc\n"
        )
        assert codes(source) == []


class TestEngineIntegration:
    def test_lint_source_dataflow_flag(self):
        source = (
            "def estimate(sel_join, n_rows):\n"
            "    return sel_join + n_rows\n"
        )
        with_dataflow = lint_source(source, "mod.py", dataflow=True)
        without = lint_source(source, "mod.py", dataflow=False)
        assert "ELS301" in [d.code for d in with_dataflow]
        assert "ELS301" not in [d.code for d in without]

    def test_noqa_suppresses_dataflow_finding(self):
        source = (
            "def _estimate(sel_join, n_rows):\n"
            "    return sel_join + n_rows  # els: noqa[ELS301]\n"
        )
        diagnostics = lint_source(source, "mod.py", dataflow=True)
        assert [d.code for d in diagnostics] == []

    def test_blanket_noqa_suppresses_everything_on_the_line(self):
        source = (
            "def _estimate(sel_join, n_rows):\n"
            "    return sel_join + n_rows  # els: noqa\n"
        )
        assert lint_source(source, "mod.py", dataflow=True) == []

    def test_noqa_is_line_scoped(self):
        source = (
            "def estimate(sel_join, n_rows):  # els: noqa[ELS301]\n"
            "    return sel_join + n_rows\n"
        )
        diagnostics = lint_source(source, "mod.py", dataflow=True)
        codes_found = [d.code for d in diagnostics]
        # The suppression sits on the def line, the finding on the return
        # line: the finding survives and the suppression warns as unused.
        assert "ELS301" in codes_found
        assert "ELS199" in codes_found

    def test_unused_suppression_warns_els199(self):
        source = "x = 1  # els: noqa[ELS104]\n"
        diagnostics = lint_source(source, "mod.py")
        assert [d.code for d in diagnostics] == ["ELS199"]
        assert diagnostics[0].severity.value == "warning"

    def test_used_suppression_is_silent(self):
        source = (
            "def _f(values=[]):  # els: noqa[ELS104]\n"
            "    return values\n"
        )
        assert lint_source(source, "mod.py") == []

    def test_wrong_code_suppression_keeps_finding_and_warns(self):
        source = (
            "def _f(values=[]):  # els: noqa[ELS106]\n"
            "    return values\n"
        )
        codes_found = [d.code for d in lint_source(source, "mod.py")]
        assert "ELS104" in codes_found
        assert "ELS199" in codes_found
