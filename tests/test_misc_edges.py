"""Edge coverage across modules: string keys, metrics, mixed-type domains."""

import pytest

from repro.catalog import TableSchema
from repro.execution import (
    ExecutionMetrics,
    HashJoinOp,
    NestedLoopJoinOp,
    TableScanOp,
)
from repro.sql import Op, join_predicate, local_predicate, parse_query
from repro.storage import Database


class TestStringKeyJoins:
    """Joins and filters over string columns (no histograms, no ranges)."""

    def make_database(self):
        from repro.catalog.schema import ColumnDef, ColumnType

        db = Database()
        db.load_columns(
            TableSchema(
                "Users",
                (ColumnDef("name", ColumnType.STR), ColumnDef("dept", ColumnType.STR)),
            ),
            {"name": ["ann", "bob", "cal"], "dept": ["hr", "it", "it"]},
        )
        db.load_columns(
            TableSchema("Depts", (ColumnDef("dept", ColumnType.STR),)),
            {"dept": ["hr", "it", "pr"]},
        )
        db.analyze()
        return db

    def test_string_equijoin_executes(self):
        from repro.analysis import true_join_size

        db = self.make_database()
        query = parse_query(
            "SELECT COUNT(*) FROM Users, Depts WHERE Users.dept = Depts.dept"
        )
        assert true_join_size(query, db) == 3

    def test_string_local_predicate(self):
        from repro.analysis import true_join_size

        db = self.make_database()
        query = parse_query(
            "SELECT COUNT(*) FROM Users WHERE Users.dept = 'it'"
        )
        assert true_join_size(query, db) == 2

    def test_string_estimation_uses_distinct(self):
        from repro.core import ELS, JoinSizeEstimator

        db = self.make_database()
        query = parse_query(
            "SELECT COUNT(*) FROM Users, Depts WHERE Users.dept = Depts.dept"
        )
        estimator = JoinSizeEstimator(query, db.catalog, ELS)
        # 3 * 3 / max(2, 3) = 3.
        assert estimator.estimate(["Users", "Depts"]) == pytest.approx(3.0)

    def test_optimizer_handles_string_tables(self):
        from repro.core import ELS
        from repro.execution import Executor
        from repro.optimizer import Optimizer

        db = self.make_database()
        query = parse_query(
            "SELECT COUNT(*) FROM Users, Depts WHERE Users.dept = Depts.dept "
            "AND Users.name <> 'bob'"
        )
        result = Optimizer(db.catalog).optimize(query, ELS)
        assert Executor(db).count(result.plan).count == 2


class TestHashJoinStringKeys:
    def test_string_keys(self):
        metrics = ExecutionMetrics()
        left = TableScanOp("L", ["k"], [("a",), ("b",)], metrics)
        right = TableScanOp("R", ["k"], [("b",), ("b",), ("c",)], metrics)
        op = HashJoinOp(left, right, [join_predicate("L", "k", "R", "k")], metrics)
        assert op.rows() == [("b", "b"), ("b", "b")]

    def test_mixed_numeric_keys_match_by_equality(self):
        """1 == 1.0 in Python; the join honors SQL-ish numeric equality."""
        metrics = ExecutionMetrics()
        left = TableScanOp("L", ["k"], [(1,)], metrics)
        right = TableScanOp("R", ["k"], [(1.0,)], metrics)
        op = NestedLoopJoinOp(
            left, right, [join_predicate("L", "k", "R", "k")], metrics
        )
        assert len(op.rows()) == 1


class TestMetricsEdges:
    def test_snapshot_is_independent_copy(self):
        from repro.execution.metrics import OperatorStats

        stats = OperatorStats("x", rows_out=5)
        copy = stats.snapshot()
        stats.rows_out = 99
        assert copy.rows_out == 5

    def test_empty_metrics_summary(self):
        metrics = ExecutionMetrics()
        assert "wall:" in metrics.summary()
        assert metrics.total_rows_out == 0
        assert metrics.total_pages_read == 0.0


class TestCliWithBetween:
    def test_closure_propagates_between_bounds(self, tmp_path, capsys):
        import json

        from repro.cli import main

        stats = tmp_path / "s.json"
        stats.write_text(
            json.dumps(
                {
                    "A": {"rows": 100, "columns": {"x": 100}},
                    "B": {"rows": 100, "columns": {"y": 100}},
                }
            )
        )
        code = main(
            [
                "closure",
                "--stats",
                str(stats),
                "--query",
                "SELECT COUNT(*) FROM A, B WHERE A.x = B.y AND A.x BETWEEN 10 AND 20",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "B.y >= 10" in out and "B.y <= 20" in out


class TestZeroRowTables:
    def test_estimation_with_empty_table(self):
        from repro.catalog import Catalog
        from repro.core import ELS, JoinSizeEstimator
        from repro.sql import Projection, Query

        catalog = Catalog.from_stats({"E": (0, {"x": 0}), "B": (10, {"x": 5})})
        query = Query.build(["E", "B"], [], Projection(count_star=True))
        estimator = JoinSizeEstimator(query, catalog, ELS)
        assert estimator.estimate(["E", "B"]) == 0.0

    def test_executing_empty_join(self):
        from repro.analysis import true_join_size

        db = Database()
        db.load_columns(TableSchema.of("E", "x"), {"x": []})
        db.load_columns(TableSchema.of("B", "x"), {"x": [1, 2]})
        query = parse_query("SELECT COUNT(*) FROM E, B WHERE E.x = B.x")
        assert true_join_size(query, db) == 0
