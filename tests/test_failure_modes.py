"""Failure injection: every layer must fail loudly, specifically, and early.

A library is adoptable when misuse produces actionable errors rather than
silent nonsense.  These tests drive each subsystem with broken inputs —
missing statistics, dangling columns, malformed plans, inconsistent
states — and pin the exception type (always a :class:`ReproError`
subclass) so error-handling contracts cannot regress silently.
"""

import pytest

from repro.catalog import Catalog, TableSchema, TableStats
from repro.core import ELS, JoinSizeEstimator
from repro.errors import (
    CatalogError,
    EstimationError,
    ExecutionError,
    OptimizationError,
    ReproError,
    StorageError,
)
from repro.execution import Executor
from repro.optimizer import JoinMethod, JoinPlan, Optimizer, ScanPlan
from repro.sql import Op, Projection, Query, join_predicate, local_predicate
from repro.storage import Database


class TestCatalogFailures:
    def test_missing_table_statistics(self):
        catalog = Catalog.from_stats({"A": (10, {"x": 5})})
        query = Query.build(
            ["A", "B"], [join_predicate("A", "x", "B", "y")], Projection(count_star=True)
        )
        with pytest.raises(CatalogError):
            JoinSizeEstimator(query, catalog, ELS)

    def test_missing_column_statistics(self):
        catalog = Catalog()
        schema = TableSchema.of("A", "x", "y")
        catalog.register(schema, TableStats(10, {"x": _stats(5)}))
        catalog.register_simple("B", 10, {"z": 5})
        query = Query.build(
            ["A", "B"],
            [join_predicate("A", "y", "B", "z")],  # y has no recorded stats
            Projection(count_star=True),
        )
        with pytest.raises(ReproError):
            JoinSizeEstimator(query, catalog, ELS).estimate(["A", "B"])

    def test_local_predicate_on_unknown_column(self):
        catalog = Catalog.from_stats({"A": (10, {"x": 5})})
        query = Query.build(
            ["A"], [local_predicate("A", "ghost", Op.EQ, 1)], Projection(count_star=True)
        )
        with pytest.raises(CatalogError):
            JoinSizeEstimator(query, catalog, ELS)


class TestStorageFailures:
    def test_executing_against_missing_table(self):
        plan = ScanPlan("A", "A", (), 0.0, 0.0, 8)
        with pytest.raises(StorageError):
            Executor(Database()).count(plan)

    def test_plan_references_missing_column(self):
        db = Database()
        db.load_columns(TableSchema.of("A", "x"), {"x": [1]})
        plan = ScanPlan(
            "A", "A", (local_predicate("A", "ghost", Op.EQ, 1),), 0.0, 0.0, 8
        )
        with pytest.raises(ExecutionError):
            Executor(db).count(plan)

    def test_join_predicate_outside_inputs(self):
        db = Database()
        db.load_columns(TableSchema.of("A", "x"), {"x": [1]})
        db.load_columns(TableSchema.of("B", "y"), {"y": [1]})
        plan = JoinPlan(
            left=ScanPlan("A", "A", (), 0.0, 0.0, 8),
            right=ScanPlan("B", "B", (), 0.0, 0.0, 8),
            method=JoinMethod.NESTED_LOOPS,
            predicates=(join_predicate("A", "x", "Z", "q"),),
            estimated_rows=0.0,
            estimated_cost=0.0,
            row_width=16,
        )
        with pytest.raises(ExecutionError):
            Executor(db).count(plan)

    def test_keyed_join_without_key(self):
        db = Database()
        db.load_columns(TableSchema.of("A", "x"), {"x": [1]})
        db.load_columns(TableSchema.of("B", "y"), {"y": [1]})
        plan = JoinPlan(
            left=ScanPlan("A", "A", (), 0.0, 0.0, 8),
            right=ScanPlan("B", "B", (), 0.0, 0.0, 8),
            method=JoinMethod.SORT_MERGE,
            predicates=(),  # cartesian under a keyed method
            estimated_rows=0.0,
            estimated_cost=0.0,
            row_width=16,
        )
        with pytest.raises(ExecutionError):
            Executor(db).count(plan)


class TestOptimizerFailures:
    def test_optimizing_without_statistics(self):
        query = Query.build(["A"], [], Projection(count_star=True))
        with pytest.raises(CatalogError):
            Optimizer(Catalog()).optimize(query)

    def test_unknown_enumerator(self):
        with pytest.raises(OptimizationError):
            Optimizer(Catalog(), enumerator="oracle")


class TestEstimatorStateFailures:
    def setup_method(self):
        self.catalog = Catalog.from_stats(
            {"A": (10, {"x": 5}), "B": (20, {"y": 10})}
        )
        self.query = Query.build(
            ["A", "B"], [join_predicate("A", "x", "B", "y")], Projection(count_star=True)
        )
        self.estimator = JoinSizeEstimator(self.query, self.catalog, ELS)

    def test_start_unknown_table(self):
        with pytest.raises(EstimationError):
            self.estimator.start("ZZ")

    def test_empty_state_rejected(self):
        from repro.core.estimator import EstimateState

        with pytest.raises(EstimationError):
            EstimateState(frozenset(), 1.0)

    def test_all_errors_are_repro_errors(self):
        """Callers can catch the whole library with one except clause."""
        for error_type in (
            CatalogError,
            EstimationError,
            ExecutionError,
            OptimizationError,
            StorageError,
        ):
            assert issubclass(error_type, ReproError)


class TestSelfJoinEstimation:
    """Aliased scans of one base table are distinct relations everywhere."""

    def make(self):
        catalog = Catalog.from_stats({"R": (1000, {"x": 100})})
        query = Query.build(
            ["a", "b"],
            [join_predicate("a", "x", "b", "x")],
            Projection(count_star=True),
            aliases={"a": "R", "b": "R"},
        )
        return catalog, query

    def test_self_join_estimate(self):
        catalog, query = self.make()
        estimator = JoinSizeEstimator(query, catalog, ELS)
        # Equation 1 with d1 = d2 = 100: 1000 * 1000 / 100.
        assert estimator.estimate(["a", "b"]) == pytest.approx(10000.0)

    def test_self_join_with_local_predicate(self):
        catalog = Catalog.from_stats({"R": (1000, {"x": 100})})
        query = Query.build(
            ["a", "b"],
            [
                join_predicate("a", "x", "b", "x"),
                local_predicate("a", "x", Op.EQ, 7),
            ],
            Projection(count_star=True),
            aliases={"a": "R", "b": "R"},
        )
        estimator = JoinSizeEstimator(query, catalog, ELS)
        # Closure propagates x = 7 to b as well: 10 * 10 * 1/max(1,1).
        assert estimator.estimate(["a", "b"]) == pytest.approx(100.0)

    def test_self_join_executes_correctly(self):
        from repro.analysis import true_join_size
        from repro.workloads import TableSpec, build_database

        database = build_database([TableSpec.uniform("R", 100, {"x": 10})], seed=0)
        catalog, query = self.make()
        # Each value appears 10 times; self-join size = 10 * 10 * 10.
        assert true_join_size(query, database) == 1000


def _stats(distinct):
    from repro.catalog import ColumnStats

    return ColumnStats(distinct=distinct)
