"""Effective statistics tests: Section 5 folding and Section 6 groups."""

import pytest

from repro.catalog import TableStats
from repro.core import ELS, SM, EquivalenceClasses, compute_effective_table
from repro.core.config import EstimatorConfig
from repro.errors import EstimationError
from repro.sql import Op, column_equality, join_predicate, local_predicate


def equivalence_for(*predicates):
    return EquivalenceClasses.from_predicates(list(predicates))


class TestNoLocalPredicates:
    def test_identity_when_no_predicates(self):
        stats = TableStats.simple(1000, {"x": 100})
        effective = compute_effective_table("R", stats, [], EquivalenceClasses(), ELS)
        assert effective.rows == 1000
        assert effective.distinct("x") == 100
        assert effective.local_selectivity == 1.0
        assert effective.groups == ()

    def test_unfiltered_key_column_not_urn_reduced(self):
        """A key column of an unfiltered table keeps d = ||R|| (the urn
        model must not fire without a selection)."""
        stats = TableStats.simple(1000, {"k": 1000})
        effective = compute_effective_table("R", stats, [], EquivalenceClasses(), ELS)
        assert effective.distinct("k") == 1000


class TestSection5Folding:
    def make(self, config=ELS):
        stats = TableStats.simple(100000, {"y": 100000, "x": 10000})
        predicates = [local_predicate("R", "y", Op.LE, 50000)]
        return compute_effective_table(
            "R", stats, predicates, equivalence_for(*predicates), config
        )

    def test_rows_reduced_by_selectivity(self):
        effective = self.make()
        assert effective.rows == pytest.approx(50000, rel=0.01)
        assert effective.rows_after_constants == effective.rows

    def test_filtered_column_scales_directly(self):
        """d'_y = d_y * S_L for the filtered column itself."""
        effective = self.make()
        assert effective.distinct("y") == pytest.approx(50000, rel=0.01)

    def test_other_column_uses_urn_model(self):
        """Section 5's numeric example: d_x = 10000 -> ~9933, not 5000."""
        effective = self.make()
        assert effective.distinct("x") == pytest.approx(9933, rel=0.001)

    def test_proportional_when_urn_disabled(self):
        effective = self.make(ELS.but(use_urn_model=False))
        assert effective.distinct("x") == pytest.approx(5000, rel=0.01)

    def test_standard_config_keeps_original_columns(self):
        """Algorithm SM 'computes join selectivities independent of the
        effect of local predicates': rows shrink, columns do not."""
        effective = self.make(SM)
        assert effective.rows == pytest.approx(50000, rel=0.01)
        assert effective.distinct("x") == 10000
        assert effective.distinct("y") == 100000

    def test_equality_literal_pins_distinct_to_one(self):
        stats = TableStats.simple(1000, {"y": 100})
        predicates = [local_predicate("R", "y", Op.EQ, 7)]
        effective = compute_effective_table(
            "R", stats, predicates, equivalence_for(*predicates), ELS
        )
        assert effective.distinct("y") == 1.0
        assert effective.rows == pytest.approx(10.0)

    def test_multiple_columns_independence(self):
        stats = TableStats.simple(10000, {"a": 100, "b": 100})
        predicates = [
            local_predicate("R", "a", Op.EQ, 1),
            local_predicate("R", "b", Op.EQ, 2),
        ]
        effective = compute_effective_table(
            "R", stats, predicates, equivalence_for(*predicates), ELS
        )
        assert effective.local_selectivity == pytest.approx(1e-4)
        assert effective.rows == pytest.approx(1.0)


class TestSection6Groups:
    def make(self, config=ELS):
        """The Section 6 example: ||R2||=1000, d_y=10, d_w=50."""
        stats = TableStats.simple(1000, {"y": 10, "w": 50})
        j1 = join_predicate("R1", "x", "R2", "y")
        j2 = join_predicate("R1", "x", "R2", "w")
        implied = column_equality("R2", "y", "w")
        return compute_effective_table(
            "R2", stats, [implied], equivalence_for(j1, j2, implied), config
        )

    def test_rows_divided_by_larger_cardinality(self):
        """||R2||' = ceil(1000 / 50) = 20."""
        assert self.make().rows == 20.0

    def test_group_effective_cardinality_is_urn_of_smallest(self):
        """Effective join cardinality = ceil(10 * (1 - 0.9^20)) = 9."""
        effective = self.make()
        (group,) = effective.groups
        assert group.distinct == 9.0
        assert group.columns == frozenset({"y", "w"})
        assert group.row_divisor == 50.0

    def test_both_columns_answer_with_group_distinct(self):
        effective = self.make()
        assert effective.distinct("y") == 9.0
        assert effective.distinct("w") == 9.0

    def test_group_of(self):
        effective = self.make()
        assert effective.group_of("y") is not None
        assert effective.group_of("nope") is None

    def test_standard_treatment_scales_rows_only(self):
        effective = self.make(SM)
        assert effective.rows == pytest.approx(20.0)
        assert effective.groups == ()
        assert effective.distinct("y") == 10.0  # untouched

    def test_three_column_generalization(self):
        """Generalized Section 6: rows / (d_(2) * d_(3)), urn of d_(1)."""
        stats = TableStats.simple(100000, {"a": 5, "b": 20, "c": 40})
        preds = [
            column_equality("R", "a", "b"),
            column_equality("R", "b", "c"),
        ]
        effective = compute_effective_table(
            "R", stats, preds, equivalence_for(*preds), ELS
        )
        assert effective.rows == 125.0  # ceil(100000 / (20 * 40))
        (group,) = effective.groups
        assert group.distinct == 5.0  # urn(5, 125) saturates at 5

    def test_constant_predicate_applies_before_group(self):
        """Section 5 runs before Section 6: the divisor uses effective d."""
        stats = TableStats.simple(1000, {"y": 10, "w": 50})
        constant = local_predicate("R2", "w", Op.EQ, 3)
        implied = column_equality("R2", "y", "w")
        j1 = join_predicate("R1", "x", "R2", "y")
        effective = compute_effective_table(
            "R2", stats, [constant, implied], equivalence_for(j1, constant, implied), ELS
        )
        # w = 3 -> 20 rows, d_w' = 1; group divisor = d_y'(larger of 1, ~10).
        assert effective.rows_after_constants == pytest.approx(20.0)
        assert effective.rows <= 20.0


class TestValidation:
    def test_foreign_predicate_rejected(self):
        stats = TableStats.simple(10, {"x": 5})
        with pytest.raises(EstimationError):
            compute_effective_table(
                "R",
                stats,
                [local_predicate("S", "x", Op.EQ, 1)],
                EquivalenceClasses(),
                ELS,
            )

    def test_join_predicate_rejected_as_local(self):
        stats = TableStats.simple(10, {"x": 5})
        with pytest.raises(EstimationError):
            compute_effective_table(
                "R",
                stats,
                [join_predicate("R", "x", "S", "y")],
                EquivalenceClasses(),
                ELS,
            )

    def test_unknown_column_distinct_raises(self):
        stats = TableStats.simple(10, {"x": 5})
        effective = compute_effective_table("R", stats, [], EquivalenceClasses(), ELS)
        with pytest.raises(EstimationError):
            effective.distinct("zz")


class TestColumnInequality:
    def test_same_table_inequality_scales_rows_by_default(self):
        from repro.core.local import DEFAULT_RANGE_SELECTIVITY
        from repro.sql.predicates import ColumnRef, ComparisonPredicate

        stats = TableStats.simple(900, {"a": 30, "b": 30})
        pred = ComparisonPredicate(ColumnRef("R", "a"), Op.LT, ColumnRef("R", "b"))
        effective = compute_effective_table(
            "R", stats, [pred], equivalence_for(pred), ELS
        )
        assert effective.rows == pytest.approx(900 * DEFAULT_RANGE_SELECTIVITY)
        assert effective.distinct("a") == 30.0
