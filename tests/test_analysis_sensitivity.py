"""Stale-statistics sensitivity tests."""

import random

import pytest

from repro.analysis.sensitivity import (
    StalenessPoint,
    perturb_catalog,
    run_staleness_study,
)
from repro.catalog import Catalog
from repro.workloads import chain_workload


class TestPerturbCatalog:
    def make(self):
        return Catalog.from_stats({"R": (1000, {"x": 100, "y": 1000})})

    def test_zero_error_is_identity(self):
        catalog = self.make()
        perturbed = perturb_catalog(catalog, 0.0, random.Random(0))
        assert perturbed.stats("R").row_count == 1000
        assert perturbed.column_stats("R", "x").distinct == 100

    def test_perturbation_bounded(self):
        catalog = self.make()
        rng = random.Random(1)
        for _ in range(20):
            perturbed = perturb_catalog(catalog, 0.5, rng)
            rows = perturbed.stats("R").row_count
            assert 1000 / 1.6 <= rows <= 1000 * 1.6

    def test_invariants_preserved(self):
        """distinct <= rows must survive perturbation (TableStats enforces it)."""
        catalog = self.make()
        rng = random.Random(2)
        for _ in range(50):
            perturbed = perturb_catalog(catalog, 3.0, rng)
            stats = perturbed.stats("R")
            for column in ("x", "y"):
                assert stats.column(column).distinct <= stats.row_count

    def test_source_unchanged(self):
        catalog = self.make()
        perturb_catalog(catalog, 2.0, random.Random(3))
        assert catalog.stats("R").row_count == 1000

    def test_range_and_histograms_kept(self):
        catalog = self.make()
        perturbed = perturb_catalog(catalog, 1.0, random.Random(4))
        column = perturbed.column_stats("R", "x")
        assert column.low == 1 and column.high == 100

    def test_negative_error_rejected(self):
        with pytest.raises(ValueError):
            perturb_catalog(self.make(), -0.1, random.Random(0))


class TestStalenessStudy:
    def test_grid_shape(self):
        rng = random.Random(5)
        workloads = [chain_workload(3, rng, min_rows=100, max_rows=400) for _ in range(2)]
        points = run_staleness_study(workloads, errors=(0.0, 1.0), seed=9)
        assert len(points) == 4 * 2  # four algorithms, two error levels
        assert all(isinstance(p, StalenessPoint) for p in points)

    def test_zero_error_plans_stable(self):
        rng = random.Random(6)
        workloads = [chain_workload(3, rng, min_rows=100, max_rows=400)]
        points = run_staleness_study(workloads, errors=(0.0,), seed=10)
        for point in points:
            assert point.plan_stability == 1.0

    def test_error_degrades_estimates(self):
        rng = random.Random(7)
        workloads = [
            chain_workload(3, rng, min_rows=200, max_rows=600) for _ in range(3)
        ]
        points = run_staleness_study(workloads, errors=(0.0, 2.0), seed=11)
        els = {p.error: p for p in points if p.algorithm == "ELS"}
        assert els[2.0].mean_q_error >= els[0.0].mean_q_error
