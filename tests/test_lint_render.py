"""Golden-file tests pinning the text and JSON diagnostic renderings.

The golden files under ``tests/golden/`` are the rendering contract: CI
annotations and editor integrations parse these exact shapes, so any change
here is a deliberate, reviewed format break.
"""

import json
import pathlib

from repro.lint.diagnostics import (
    Diagnostic,
    Severity,
    count_by_severity,
    filter_diagnostics,
    has_errors,
)
from repro.lint.render import render_json, render_text

GOLDEN = pathlib.Path(__file__).parent / "golden"


def sample_diagnostics():
    """One finding per layer plus a warning — the golden-file fixture."""
    return [
        Diagnostic(
            code="ELS104",
            message="mutable default argument in 'combine'",
            severity=Severity.ERROR,
            file="src/repro/core/foo.py",
            line=12,
            col=4,
            hint="default to None and construct the container inside the function",
        ),
        Diagnostic(
            code="ELS105",
            message="public name 'helper' is missing from __all__",
            severity=Severity.WARNING,
            file="src/repro/core/foo.py",
            line=30,
            col=0,
            hint="add the name to __all__ or rename it with a leading underscore",
        ),
        Diagnostic(
            code="ELS201",
            message=(
                "predicate set is not a transitive-closure fixpoint: "
                "R1.x = R3.z is derivable (rule a) but missing"
            ),
            severity=Severity.ERROR,
            context="R1.x = R3.z",
            hint="apply repro.core.closure.close_query before estimating",
        ),
    ]


class TestTextRendering:
    def test_matches_golden_file(self):
        rendered = render_text(sample_diagnostics()) + "\n"
        assert rendered == (GOLDEN / "diagnostics.txt").read_text()

    def test_empty_list_renders_clean_line(self):
        assert render_text([]) == "clean: no diagnostics"

    def test_hints_can_be_suppressed(self):
        rendered = render_text(sample_diagnostics(), show_hints=False)
        assert "hint:" not in rendered

    def test_layer2_location_is_the_context(self):
        [line] = render_text([sample_diagnostics()[2]], show_hints=False).splitlines()[:1]
        assert line.startswith("R1.x = R3.z: ELS201 error:")


class TestJsonRendering:
    def test_matches_golden_file(self):
        rendered = render_json(sample_diagnostics()) + "\n"
        assert rendered == (GOLDEN / "diagnostics.json").read_text()

    def test_payload_shape(self):
        payload = json.loads(render_json(sample_diagnostics()))
        assert payload["total"] == 3
        assert payload["counts"] == {"error": 2, "warning": 1, "info": 0}
        assert [d["code"] for d in payload["diagnostics"]] == [
            "ELS104",
            "ELS105",
            "ELS201",
        ]

    def test_empty_payload(self):
        payload = json.loads(render_json([]))
        assert payload == {
            "diagnostics": [],
            "counts": {"error": 0, "warning": 0, "info": 0},
            "total": 0,
        }


class TestDiagnosticModel:
    def test_filter_sorts_layer2_before_file_findings(self):
        ordered = filter_diagnostics(reversed(sample_diagnostics()))
        assert [d.code for d in ordered] == ["ELS201", "ELS104", "ELS105"]

    def test_select_and_ignore_compose(self):
        kept = filter_diagnostics(
            sample_diagnostics(), select=["ELS1"], ignore=["ELS105"]
        )
        assert [d.code for d in kept] == ["ELS104"]

    def test_severity_helpers(self):
        diagnostics = sample_diagnostics()
        assert has_errors(diagnostics)
        assert not has_errors([diagnostics[1]])
        assert count_by_severity(diagnostics) == {"error": 2, "warning": 1, "info": 0}

    def test_to_dict_round_trips_through_json(self):
        diagnostic = sample_diagnostics()[0]
        payload = json.loads(json.dumps(diagnostic.to_dict()))
        assert payload["code"] == "ELS104"
        assert payload["severity"] == "error"
        assert payload["file"] == "src/repro/core/foo.py"
