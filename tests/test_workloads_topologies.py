"""Cycle and snowflake workload tests, plus cross-topology estimation checks."""

import random

import pytest

from repro.analysis import evaluate_workload, true_join_size
from repro.core import ELS, SM, JoinSizeEstimator
from repro.errors import WorkloadError
from repro.workloads import build_database, cycle_workload, snowflake_workload


class TestCycle:
    def test_shape(self, rng):
        workload = cycle_workload(4, rng)
        joins = workload.query.join_predicates
        assert len(joins) == 4  # chain's 3 + the closing edge
        closing = joins[-1]
        assert closing.tables == frozenset({"T1", "T4"})

    def test_single_equivalence_class(self, rng):
        workload = cycle_workload(4, rng)
        estimator = JoinSizeEstimator(workload.query, _catalog_for(workload), ELS)
        assert len(estimator.equivalence.nontrivial_classes()) == 1

    def test_redundant_edge_is_free_under_ls(self, rng):
        """The closing predicate adds no information; ELS's estimate for
        the cycle equals its estimate for the underlying chain."""
        from repro.workloads import chain_workload

        seed_rng = random.Random(77)
        chain = chain_workload(4, seed_rng, min_rows=100, max_rows=500)
        cycle_rng = random.Random(77)
        cycle = cycle_workload(4, cycle_rng, min_rows=100, max_rows=500)
        assert chain.specs == cycle.specs  # same tables by construction
        catalog = _catalog_for(chain)
        order = list(chain.query.tables)
        chain_estimate = JoinSizeEstimator(chain.query, catalog, ELS).estimate(order)
        cycle_estimate = JoinSizeEstimator(cycle.query, catalog, ELS).estimate(order)
        assert chain_estimate == pytest.approx(cycle_estimate)

    def test_rule_m_double_counts_the_closing_edge(self, rng):
        """Rule M multiplies the redundant predicate's selectivity in, so
        its cycle estimate falls below its chain estimate."""
        from repro.workloads import chain_workload

        chain = chain_workload(4, random.Random(5), min_rows=100, max_rows=500)
        cycle = cycle_workload(4, random.Random(5), min_rows=100, max_rows=500)
        catalog = _catalog_for(chain)
        order = list(chain.query.tables)
        chain_m = JoinSizeEstimator(
            chain.query, catalog, SM, apply_closure=False
        ).estimate(order)
        cycle_m = JoinSizeEstimator(
            cycle.query, catalog, SM, apply_closure=False
        ).estimate(order)
        assert cycle_m < chain_m

    def test_true_size_unchanged_by_redundant_edge(self):
        from repro.workloads import chain_workload

        chain = chain_workload(3, random.Random(9), min_rows=100, max_rows=300)
        cycle = cycle_workload(3, random.Random(9), min_rows=100, max_rows=300)
        database = build_database(chain.specs, seed=4)
        assert true_join_size(chain.query, database) == true_join_size(
            cycle.query, database
        )


class TestSnowflake:
    def test_shape(self, rng):
        workload = snowflake_workload(2, 2, rng)
        assert workload.tables[0] == "F"
        assert len(workload.tables) == 1 + 2 + 4  # fact + dims + subdims
        assert len(workload.query.join_predicates) == 2 + 4

    def test_no_subdimensions_is_a_star(self, rng):
        workload = snowflake_workload(3, 0, rng)
        assert len(workload.tables) == 4
        assert all("F" in p.tables for p in workload.query.join_predicates)

    def test_validation(self, rng):
        with pytest.raises(WorkloadError):
            snowflake_workload(0, 1, rng)
        with pytest.raises(WorkloadError):
            snowflake_workload(1, -1, rng)

    def test_estimation_accuracy_on_snowflake(self):
        """ELS stays accurate on a topology with many small classes."""
        workload = snowflake_workload(2, 1, random.Random(13))
        records = evaluate_workload(workload, seed=13)
        els = next(r for r in records if r.algorithm == "ELS")
        assert els.q_error < 3.0

    def test_distinct_bounded_by_rows(self, rng):
        for _ in range(5):
            workload = snowflake_workload(2, 2, rng)
            for spec in workload.specs:
                for column in spec.columns.values():
                    assert column.distinct <= spec.rows


def _catalog_for(workload):
    from repro.catalog import Catalog

    entries = {
        spec.name: (spec.rows, {c: cs.distinct for c, cs in spec.columns.items()})
        for spec in workload.specs
    }
    return Catalog.from_stats(entries)
