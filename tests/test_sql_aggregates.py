"""SQL aggregate select-lists and GROUP BY: parser + end-to-end execution."""

import pytest

from repro.analysis import execute_query
from repro.catalog import TableSchema
from repro.errors import ParseError
from repro.sql import ColumnRef, parse_query
from repro.sql.query import AggregateExpr, Projection
from repro.storage import Database


class TestAggregateExpr:
    def test_count_star(self):
        assert str(AggregateExpr("count")) == "COUNT(*)"

    def test_sum_requires_column(self):
        with pytest.raises(ValueError):
            AggregateExpr("sum")

    def test_count_rejects_column(self):
        with pytest.raises(ValueError):
            AggregateExpr("count", ColumnRef("R", "x"))

    def test_unknown_function(self):
        with pytest.raises(ValueError):
            AggregateExpr("median", ColumnRef("R", "x"))


class TestProjectionShapes:
    def test_group_by_requires_aggregates(self):
        with pytest.raises(ValueError):
            Projection(group_by=(ColumnRef("R", "g"),))

    def test_count_star_exclusive(self):
        with pytest.raises(ValueError):
            Projection(count_star=True, aggregates=(AggregateExpr("count"),))

    def test_is_aggregate(self):
        assert Projection(count_star=True).is_aggregate
        assert Projection(aggregates=(AggregateExpr("count"),)).is_aggregate
        assert not Projection().is_aggregate


class TestParsing:
    def test_bare_count_star_stays_count_star(self):
        query = parse_query("SELECT COUNT(*) FROM R")
        assert query.projection.count_star
        assert not query.projection.aggregates

    def test_aggregate_list(self):
        query = parse_query("SELECT SUM(R.x), MAX(R.x) FROM R")
        aggs = query.projection.aggregates
        assert [a.function for a in aggs] == ["sum", "max"]
        assert aggs[0].column == ColumnRef("R", "x")

    def test_group_by(self):
        query = parse_query(
            "SELECT R.g, COUNT(*) FROM R WHERE R.x > 0 GROUP BY R.g"
        )
        assert query.projection.group_by == (ColumnRef("R", "g"),)
        assert query.projection.aggregates == (AggregateExpr("count"),)

    def test_group_by_multiple_columns(self):
        query = parse_query("SELECT R.a, R.b, AVG(R.x) FROM R GROUP BY R.a, R.b")
        assert len(query.projection.group_by) == 2

    def test_plain_column_must_be_grouped(self):
        with pytest.raises(ParseError):
            parse_query("SELECT R.a, COUNT(*) FROM R GROUP BY R.b")

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT R.a FROM R GROUP BY R.a")

    def test_star_with_group_by_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM R GROUP BY R.a")

    def test_unqualified_resolution_in_aggregates(self):
        query = parse_query(
            "SELECT region, SUM(amount) FROM Sales GROUP BY region",
            schemas={"Sales": ["region", "amount"]},
        )
        assert query.projection.group_by[0] == ColumnRef("Sales", "region")

    def test_round_trip(self):
        text = "SELECT R.g, SUM(R.x) FROM R WHERE R.x > 0 GROUP BY R.g"
        query = parse_query(text)
        reparsed = parse_query(str(query))
        assert reparsed.projection == query.projection
        assert reparsed.predicates == query.predicates


class TestEndToEnd:
    def make_database(self):
        db = Database()
        db.load_columns(
            TableSchema.of("Sales", "region", "amount"),
            {"region": [1, 1, 2, 2, 2, 3], "amount": [10, 20, 5, 5, 5, 100]},
        )
        db.load_columns(TableSchema.of("Regions", "id"), {"id": [1, 2, 3]})
        return db

    def test_group_by_over_join(self):
        db = self.make_database()
        query = parse_query(
            "SELECT Sales.region, SUM(Sales.amount), COUNT(*) FROM Sales, Regions "
            "WHERE Sales.region = Regions.id GROUP BY Sales.region"
        )
        result = execute_query(query, db)
        assert result.rows == [(1, 30.0, 2), (2, 15.0, 3), (3, 100.0, 1)]
        assert result.count == 6  # join cardinality before aggregation

    def test_scalar_aggregates(self):
        db = self.make_database()
        query = parse_query(
            "SELECT SUM(Sales.amount), MIN(Sales.amount), AVG(Sales.amount) FROM Sales"
        )
        result = execute_query(query, db)
        assert result.rows == [(145.0, 5, 145.0 / 6)]

    def test_aggregate_with_where(self):
        db = self.make_database()
        query = parse_query(
            "SELECT Sales.region, COUNT(*) FROM Sales "
            "WHERE Sales.amount >= 10 GROUP BY Sales.region"
        )
        result = execute_query(query, db)
        assert result.rows == [(1, 2), (3, 1)]

    def test_count_star_unchanged(self):
        db = self.make_database()
        query = parse_query("SELECT COUNT(*) FROM Sales WHERE Sales.region = 2")
        result = execute_query(query, db)
        assert result.count == 3
        assert result.rows == []
