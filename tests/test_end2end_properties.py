"""End-to-end property: under the paper's assumptions, ELS is *exact*.

The generators can realize Section 2's assumptions perfectly — uniform
(every value appears rows/d times, rows divisible by d) and contained
(nested domains starting at 1).  Under those conditions the true join size
IS Equation 3, so Algorithm ELS's estimate must match the executed count
exactly, for every join order.  Hypothesis drives the statistics; the data
is generated, loaded, executed, and compared.

This is the strongest statement the reproduction can make: not "close on
average" but "equal, whenever the assumptions hold".
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import true_join_size
from repro.core import ELS, JoinSizeEstimator
from repro.sql import Projection, Query, join_predicate
from repro.workloads import TableSpec, build_database


@st.composite
def uniform_chain_configs(draw):
    """2-4 tables; rows = distinct * multiplier keeps uniformity exact."""
    n = draw(st.integers(min_value=2, max_value=4))
    tables = []
    for _ in range(n):
        distinct = draw(st.integers(min_value=1, max_value=40))
        multiplier = draw(st.integers(min_value=1, max_value=15))
        tables.append((distinct * multiplier, distinct))
    return tables


def build(config, seed):
    specs = [
        TableSpec.uniform(f"T{i}", rows, {"c": distinct})
        for i, (rows, distinct) in enumerate(config, start=1)
    ]
    names = [spec.name for spec in specs]
    predicates = [
        join_predicate(names[i], "c", names[i + 1], "c")
        for i in range(len(names) - 1)
    ]
    query = Query.build(names, predicates, Projection(count_star=True))
    database = build_database(specs, seed=seed)
    return database, query, names


class TestExactnessUnderAssumptions:
    @given(config=uniform_chain_configs(), seed=st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_els_equals_executed_truth(self, config, seed):
        database, query, names = build(config, seed)
        truth = true_join_size(query, database)
        estimator = JoinSizeEstimator(query, database.catalog, ELS)
        estimate = estimator.estimate(names)
        assert estimate == pytest.approx(truth, abs=1e-6)

    @given(config=uniform_chain_configs(), seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_exact_for_every_join_order(self, config, seed):
        database, query, names = build(config, seed)
        truth = true_join_size(query, database)
        estimator = JoinSizeEstimator(query, database.catalog, ELS)
        for order in itertools.permutations(names):
            assert estimator.estimate(list(order)) == pytest.approx(truth, abs=1e-6)

    @given(config=uniform_chain_configs(), seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_every_prefix_is_exact(self, config, seed):
        """Not only the final size: every intermediate matches its own
        executed truth — the incremental claim itself."""
        from repro.analysis import prefix_query

        database, query, names = build(config, seed)
        estimator = JoinSizeEstimator(query, database.catalog, ELS)
        walk = estimator.estimate_order(names)
        for k in range(2, len(names) + 1):
            sub_truth = true_join_size(prefix_query(query, names[:k]), database)
            assert walk.steps[k - 1].rows == pytest.approx(sub_truth, abs=1e-6)


class TestExactnessWithEqualityLocals:
    @given(
        config=uniform_chain_configs(),
        seed=st.integers(0, 10**6),
        data=st.data(),
    )
    @settings(max_examples=20, deadline=None)
    def test_equality_local_predicate_stays_exact(self, config, seed, data):
        """An equality literal on a join column keeps everything exact:
        the selected value exists in every (nested) domain, each table
        contributes rows/d matching tuples, and closure propagates the
        literal class-wide."""
        from repro.sql import Op, local_predicate

        database, query, names = build(config, seed)
        smallest_d = min(d for _, d in config)
        value = data.draw(st.integers(min_value=1, max_value=smallest_d))
        predicates = list(query.predicates) + [
            local_predicate(names[0], "c", Op.EQ, value)
        ]
        filtered = Query.build(names, predicates, Projection(count_star=True))
        truth = true_join_size(filtered, database)
        estimate = JoinSizeEstimator(filtered, database.catalog, ELS).estimate(names)
        assert estimate == pytest.approx(truth, abs=1e-6)
