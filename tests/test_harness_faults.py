"""Graceful degradation, retries, and error wrapping in the sweep harness."""

import math
import random

import pytest

from repro.analysis.harness import (
    PAPER_ALGORITHMS,
    evaluate_workload,
    evaluate_workloads,
)
from repro.analysis.truthcache import DEFAULT_TRUTH_CACHE
from repro.errors import DeadlineExceededError, EstimationError, WorkloadError
from repro.resilience import RetryPolicy
from repro.workloads import chain_workload

FAST_RETRY = RetryPolicy(max_attempts=2, base_delay_s=0.0)


def small_workloads(count=2):
    return [
        chain_workload(3, random.Random(300 + i), max_rows=600)
        for i in range(count)
    ]


@pytest.fixture(autouse=True)
def cold_truth_cache():
    """Deadline tests must not be answered by a warm shared cache."""
    DEFAULT_TRUTH_CACHE.clear()
    yield
    DEFAULT_TRUTH_CACHE.clear()


class TestDeadlineDegradation:
    def test_impossible_deadline_degrades_instead_of_aborting(self):
        workloads = small_workloads(2)
        results = evaluate_workloads(
            workloads, seed=3, retry=FAST_RETRY, timeout_s=1e-9
        )
        assert len(results) == 2
        for records in results:
            assert len(records) == len(PAPER_ALGORITHMS)
            for record in records:
                assert record.degraded
                assert record.actual is None
                assert math.isnan(record.q_error)
                assert math.isnan(record.ratio)
                assert record.failure is not None
                assert record.failure.kind == "deadline"
                assert record.failure.attempts == FAST_RETRY.max_attempts

    def test_degraded_records_still_carry_the_estimates(self):
        workloads = small_workloads(1)
        degraded = evaluate_workloads(
            workloads, seed=3, retry=FAST_RETRY, timeout_s=1e-9
        )
        DEFAULT_TRUTH_CACHE.clear()
        healthy = evaluate_workloads(workloads, seed=3, retry=FAST_RETRY)
        for bad, good in zip(degraded[0], healthy[0]):
            assert bad.algorithm == good.algorithm
            assert bad.estimate == good.estimate  # same data, same estimator
            assert not good.degraded

    def test_generous_deadline_changes_nothing(self):
        workloads = small_workloads(2)
        bounded = evaluate_workloads(
            workloads, seed=3, retry=FAST_RETRY, timeout_s=120.0
        )
        DEFAULT_TRUTH_CACHE.clear()
        unbounded = evaluate_workloads(workloads, seed=3, retry=FAST_RETRY)
        assert repr(bounded) == repr(unbounded)

    def test_evaluate_workload_raises_rather_than_degrades(self):
        workload = small_workloads(1)[0]
        with pytest.raises(DeadlineExceededError):
            evaluate_workload(workload, seed=3, timeout_s=1e-9)


class TestErrorWrapping:
    def test_deterministic_error_is_wrapped_without_retries(self, monkeypatch):
        import repro.analysis.harness as harness

        calls = []

        def broken_truth(*args, **kwargs):
            calls.append(1)
            raise EstimationError("catalog is inconsistent")

        monkeypatch.setattr(harness, "true_join_size", broken_truth)
        workloads = small_workloads(2)
        with pytest.raises(WorkloadError) as excinfo:
            evaluate_workloads(workloads, seed=3, retry=FAST_RETRY)
        error = excinfo.value
        assert error.index == 0
        assert error.description == "T1 >< T2 >< T3"
        assert "workload[0]" in str(error)
        assert "catalog is inconsistent" in str(error)
        assert len(calls) == 1  # deterministic errors are not retried

    def test_unexpected_exception_is_retried_then_wrapped(self, monkeypatch):
        import repro.analysis.harness as harness

        calls = []

        def flaky_truth(*args, **kwargs):
            calls.append(1)
            raise OSError("transient I/O hiccup")

        monkeypatch.setattr(harness, "true_join_size", flaky_truth)
        workloads = small_workloads(1)
        with pytest.raises(WorkloadError) as excinfo:
            evaluate_workloads(workloads, seed=3, retry=FAST_RETRY)
        assert len(calls) == FAST_RETRY.max_attempts
        assert "OSError" in str(excinfo.value)

    def test_transient_exception_recovers_on_retry(self, monkeypatch):
        import repro.analysis.harness as harness

        real_truth = harness.true_join_size
        state = {"failures": 1}

        def flaky_truth(*args, **kwargs):
            if state["failures"] > 0:
                state["failures"] -= 1
                raise OSError("transient I/O hiccup")
            return real_truth(*args, **kwargs)

        monkeypatch.setattr(harness, "true_join_size", flaky_truth)
        workloads = small_workloads(1)
        recovered = evaluate_workloads(workloads, seed=3, retry=FAST_RETRY)
        monkeypatch.setattr(harness, "true_join_size", real_truth)
        DEFAULT_TRUTH_CACHE.clear()
        healthy = evaluate_workloads(workloads, seed=3, retry=FAST_RETRY)
        assert repr(recovered) == repr(healthy)


class TestPoolReaping:
    def test_crash_fault_sweep_reaps_workers_and_matches_serial(self):
        """A crash fault kills the pool mid-sweep; the re-spawn path must
        terminate+join the dead pool (no lingering children) and the
        retried sweep must still equal the serial run byte for byte."""
        import multiprocessing

        from repro.resilience import Fault, FaultPlan

        workloads = small_workloads(3)
        plan = FaultPlan(faults=(Fault(kind="crash", index=1),))
        serial = evaluate_workloads(
            workloads, seed=11, workers=1, retry=FAST_RETRY,
            fault_plan=FaultPlan(),
        )
        DEFAULT_TRUTH_CACHE.clear()
        pooled = evaluate_workloads(
            workloads, seed=11, workers=2, retry=FAST_RETRY, fault_plan=plan
        )
        assert repr(pooled) == repr(serial)
        # join() in the re-spawn path reaps every worker before return,
        # so no child of the dead pool can still be running here.
        assert multiprocessing.active_children() == []
