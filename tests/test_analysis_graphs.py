"""DOT export tests: structure of the emitted graphs."""

import pytest

from repro.analysis.graphs import plan_dot, query_graph_dot
from repro.core import ELS
from repro.optimizer import Optimizer
from repro.sql import parse_query
from repro.workloads import smbg_catalog, smbg_query


class TestQueryGraphDot:
    def test_nodes_and_edges_present(self):
        query = parse_query("SELECT * FROM A, B WHERE A.x = B.y")
        dot = query_graph_dot(query)
        assert dot.startswith("graph query {")
        assert '"A"' in dot and '"B"' in dot
        assert '"A" -- "B"' in dot
        assert dot.rstrip().endswith("}")

    def test_local_predicates_in_node_label(self):
        query = parse_query("SELECT * FROM A WHERE A.x < 5")
        dot = query_graph_dot(query)
        assert "A.x < 5" in dot

    def test_equivalence_classes_colored_distinctly(self):
        query = parse_query(
            "SELECT * FROM A, B, C, D "
            "WHERE A.x = B.x AND B.x = C.x AND A.y = D.y"
        )
        dot = query_graph_dot(query)
        # Chain class (x) and pair class (y) get two different colors.
        assert "color=blue" in dot and "color=red" in dot

    def test_non_equi_edge_dashed(self):
        query = parse_query("SELECT * FROM A, B WHERE A.x < B.y")
        dot = query_graph_dot(query)
        assert "style=dashed" in dot and "color=gray" in dot

    def test_title(self):
        query = parse_query("SELECT * FROM A")
        assert 'label="my query"' in query_graph_dot(query, title="my query")

    def test_closure_makes_clique_visible(self):
        from repro.core import close_query

        closed, _ = close_query(smbg_query())
        dot = query_graph_dot(closed)
        assert dot.count(" -- ") == 6  # all pairs of S, M, B, G


class TestPlanDot:
    def test_left_deep_plan(self):
        result = Optimizer(smbg_catalog()).optimize(smbg_query(), ELS)
        dot = plan_dot(result.plan, title="ELS plan")
        assert dot.startswith("digraph plan {")
        assert dot.count("-Join") == 3
        assert dot.count("Scan") == 4
        assert dot.count("->") == 6  # binary tree with 7 nodes

    def test_bushy_plan(self):
        result = Optimizer(smbg_catalog(), enumerator="dp-bushy").optimize(
            smbg_query(), ELS
        )
        dot = plan_dot(result.plan)
        assert dot.count("->") == 6

    def test_scan_filters_shown(self):
        result = Optimizer(smbg_catalog()).optimize(smbg_query(), ELS)
        dot = plan_dot(result.plan)
        assert "S.s < 100" in dot

    def test_estimates_embedded(self):
        result = Optimizer(smbg_catalog()).optimize(smbg_query(), ELS)
        dot = plan_dot(result.plan)
        assert "rows~99" in dot
