"""Deterministic fault injection and the chaos differential guarantee."""

import random

import pytest

from repro.analysis.harness import evaluate_workloads
from repro.analysis.truthcache import DEFAULT_TRUTH_CACHE
from repro.errors import ResilienceError, WorkloadError
from repro.resilience import (
    FAULT_PLAN_ENV,
    Fault,
    FaultPlan,
    InjectedWorkerCrash,
    RetryPolicy,
)
from repro.workloads import chain_workload, star_workload

#: Zero-delay retries keep chaos tests fast without changing semantics.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0)


def small_workloads(count=3):
    workloads = []
    for i in range(count):
        rng = random.Random(100 + i)
        if i % 2 == 0:
            workloads.append(chain_workload(3, rng, max_rows=600))
        else:
            workloads.append(
                star_workload(
                    2, rng, fact_rows_range=(300, 800), dim_rows_range=(40, 150)
                )
            )
    return workloads


class TestFaultValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Fault(kind="meteor", index=0)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            Fault(kind="crash", index=-1)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Fault(kind="slow", index=0, delay_s=-0.5)

    def test_round_trips_through_dict(self):
        fault = Fault(kind="slow", index=4, attempts=(0, 2), delay_s=0.1)
        assert Fault.from_dict(fault.to_dict()) == fault


class TestFaultPlan:
    def test_faults_for_matches_index_and_attempt(self):
        plan = FaultPlan(
            faults=(
                Fault(kind="crash", index=1, attempts=(0,)),
                Fault(kind="slow", index=1, attempts=(0, 1)),
                Fault(kind="crash", index=2, attempts=(1,)),
            )
        )
        assert [f.kind for f in plan.faults_for(1, 0)] == ["crash", "slow"]
        assert [f.kind for f in plan.faults_for(1, 1)] == ["slow"]
        assert plan.faults_for(2, 0) == ()
        assert plan.faults_for(0, 0) == ()

    def test_json_round_trip(self):
        plan = FaultPlan.sample(payload_count=5, seed=3)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_malformed_json_raises_resilience_error(self):
        with pytest.raises(ResilienceError):
            FaultPlan.from_json("{not json")
        with pytest.raises(ResilienceError):
            FaultPlan.from_json('{"faults": [{"kind": "crash"}]}')

    def test_from_env_reads_the_variable(self):
        plan = FaultPlan.sample(payload_count=4, seed=9)
        assert FaultPlan.from_env({FAULT_PLAN_ENV: plan.to_json()}) == plan
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({FAULT_PLAN_ENV: ""}) is None

    def test_sample_is_seed_deterministic(self):
        first = FaultPlan.sample(payload_count=8, seed=5)
        second = FaultPlan.sample(payload_count=8, seed=5)
        assert first == second
        assert first != FaultPlan.sample(payload_count=8, seed=6)

    def test_sample_covers_every_requested_kind(self):
        plan = FaultPlan.sample(payload_count=3, seed=0)
        kinds = {fault.kind for fault in plan.faults}
        assert kinds == {"crash", "slow", "corrupt-cache"}

    def test_sample_rejects_empty_payload_range(self):
        with pytest.raises(ValueError):
            FaultPlan.sample(payload_count=0)


class TestChaosDifferential:
    def test_faulted_parallel_run_matches_fault_free_serial_run(self):
        """The ISSUE acceptance test: a seeded plan with at least one
        crash, one slow execution, and one corrupted cache entry must not
        change a single byte of the sweep's output under workers=4."""
        workloads = small_workloads(3)
        plan = FaultPlan.sample(payload_count=3, seed=7, slow_delay_s=0.01)
        kinds = {fault.kind for fault in plan.faults}
        assert kinds == {"crash", "slow", "corrupt-cache"}

        baseline = evaluate_workloads(
            workloads, seed=11, workers=1, retry=FAST_RETRY, fault_plan=FaultPlan()
        )
        chaotic = evaluate_workloads(
            workloads, seed=11, workers=4, retry=FAST_RETRY, fault_plan=plan
        )
        assert repr(chaotic) == repr(baseline)

    def test_faulted_serial_run_matches_too(self):
        workloads = small_workloads(3)
        plan = FaultPlan.sample(payload_count=3, seed=7, slow_delay_s=0.01)
        baseline = evaluate_workloads(
            workloads, seed=11, workers=1, retry=FAST_RETRY, fault_plan=FaultPlan()
        )
        chaotic = evaluate_workloads(
            workloads, seed=11, workers=1, retry=FAST_RETRY, fault_plan=plan
        )
        assert repr(chaotic) == repr(baseline)

    def test_corruption_fault_provably_hits_the_digest_path(self):
        DEFAULT_TRUTH_CACHE.clear()
        workloads = small_workloads(1)
        plan = FaultPlan(faults=(Fault(kind="corrupt-cache", index=0),))
        records = evaluate_workloads(
            workloads, seed=11, workers=1, retry=FAST_RETRY, fault_plan=plan
        )
        assert all(not r.degraded for r in records[0])
        assert DEFAULT_TRUTH_CACHE.stats.corruptions >= 1

    def test_persistent_crash_exhausts_retries_with_context(self):
        workloads = small_workloads(2)
        plan = FaultPlan(
            faults=(Fault(kind="crash", index=1, attempts=(0, 1, 2)),)
        )
        with pytest.raises(WorkloadError) as excinfo:
            evaluate_workloads(
                workloads, seed=11, workers=1, retry=FAST_RETRY, fault_plan=plan
            )
        error = excinfo.value
        assert error.index == 1
        assert "crash" in str(error)
        assert "workload[1]" in str(error)

    def test_env_var_plan_reaches_the_sweep(self, monkeypatch):
        workloads = small_workloads(2)
        plan = FaultPlan(
            faults=(Fault(kind="crash", index=0, attempts=(0, 1, 2)),)
        )
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        with pytest.raises(WorkloadError):
            evaluate_workloads(workloads, seed=11, workers=1, retry=FAST_RETRY)

    def test_injected_crash_is_a_resilience_error(self):
        assert issubclass(InjectedWorkerCrash, ResilienceError)
