"""Histogram-overlap join estimation tests (containment relaxation)."""

import pytest

from repro.catalog import ColumnStats, build_equi_depth, build_equi_width
from repro.core.histjoin import histogram_join_selectivity, histogram_join_size
from repro.core.skew import exact_join_size
from repro.errors import EstimationError


def stats_from_values(values, buckets=10, kind="depth"):
    build = build_equi_depth if kind == "depth" else build_equi_width
    return ColumnStats(
        distinct=len(set(values)),
        low=min(values),
        high=max(values),
        histogram=build(values, buckets),
    )


def range_only_stats(values):
    return ColumnStats(distinct=len(set(values)), low=min(values), high=max(values))


def truth(left_values, right_values):
    left = {v: left_values.count(v) for v in set(left_values)}
    right = {v: right_values.count(v) for v in set(right_values)}
    return exact_join_size(left, right)


class TestBasicShapes:
    def test_identical_uniform_domains_near_equation_1(self):
        left_values = list(range(1, 101)) * 5  # 500 rows, d=100
        right_values = list(range(1, 101)) * 3  # 300 rows, d=100
        left = stats_from_values(left_values)
        right = stats_from_values(right_values)
        size = histogram_join_size(500, left, 300, right)
        equation_1 = 500 * 300 / 100
        assert size == pytest.approx(equation_1, rel=0.15)
        assert truth(left_values, right_values) == equation_1

    def test_disjoint_domains_estimate_zero(self):
        """The containment assumption's worst case, fixed."""
        left = stats_from_values(list(range(1, 101)))
        right = stats_from_values(list(range(1000, 1100)))
        assert histogram_join_size(100, left, 100, right) == 0.0

    def test_partial_overlap_beats_equation_1(self):
        """Half-overlapping domains: Equation 1 ignores the offset entirely."""
        left_values = list(range(1, 201)) * 5  # domain 1..200
        right_values = list(range(101, 301)) * 5  # domain 101..300
        left = stats_from_values(left_values, buckets=20)
        right = stats_from_values(right_values, buckets=20)
        exact = truth(left_values, right_values)  # only 100 shared values
        histogram_estimate = histogram_join_size(1000, left, 1000, right)
        equation_1 = 1000 * 1000 / 200
        assert abs(histogram_estimate - exact) < abs(equation_1 - exact) / 3

    def test_range_only_fallback(self):
        """Min/max without histograms still capture the overlap."""
        left = range_only_stats(list(range(1, 101)))
        right = range_only_stats(list(range(1000, 1100)))
        assert histogram_join_size(100, left, 100, right) == 0.0

    def test_no_information_falls_back_to_equation_1(self):
        left = ColumnStats(distinct=100)
        right = ColumnStats(distinct=1000)
        assert histogram_join_size(100, left, 1000, right) == pytest.approx(100.0)


class TestEdgeCases:
    def test_zero_rows(self):
        stats = stats_from_values([1, 2, 3])
        assert histogram_join_size(0, stats, 10, stats) == 0.0

    def test_negative_rows_rejected(self):
        stats = stats_from_values([1, 2, 3])
        with pytest.raises(EstimationError):
            histogram_join_size(-1, stats, 1, stats)

    def test_single_value_domains(self):
        left = stats_from_values([7] * 10)
        right = stats_from_values([7] * 20)
        size = histogram_join_size(10, left, 20, right)
        assert size == pytest.approx(200.0)

    def test_point_overlap(self):
        left = stats_from_values(list(range(1, 11)))
        right = stats_from_values(list(range(10, 21)))
        size = histogram_join_size(10, left, 11, right)
        # Only value 10 is shared: truth is 1.
        assert 0.0 <= size <= 5.0

    def test_equi_width_histograms_supported(self):
        left = stats_from_values(list(range(1, 101)) * 2, kind="width")
        right = stats_from_values(list(range(1, 101)) * 2, kind="width")
        size = histogram_join_size(200, left, 200, right)
        assert size == pytest.approx(400.0, rel=0.2)

    def test_extra_segments_refine(self):
        left = stats_from_values(list(range(1, 201)) * 5, buckets=4)
        right = stats_from_values(list(range(101, 301)) * 5, buckets=4)
        coarse = histogram_join_size(1000, left, 1000, right, segments=0)
        fine = histogram_join_size(1000, left, 1000, right, segments=16)
        exact = 100 * 5 * 5  # 100 shared values, 5 rows each side
        assert abs(fine - exact) <= abs(coarse - exact) + 1e-9


class TestSelectivity:
    def test_bounded(self):
        stats = stats_from_values([1] * 50)
        selectivity = histogram_join_selectivity(50, stats, 50, stats)
        assert 0.0 < selectivity <= 1.0

    def test_zero_rows(self):
        stats = stats_from_values([1, 2])
        assert histogram_join_selectivity(0, stats, 5, stats) == 0.0


class TestEstimatorIntegration:
    def test_partial_overlap_through_estimator(self):
        from repro.catalog import Catalog, TableSchema
        from repro.catalog.collector import collect_table_stats
        from repro.core import ELS, JoinSizeEstimator
        from repro.sql import Projection, Query, join_predicate
        from repro.storage import Table

        left_values = list(range(1, 201)) * 5
        right_values = list(range(101, 301)) * 5
        catalog = Catalog()
        for name, values in (("L", left_values), ("R", right_values)):
            table = Table(TableSchema.of(name, "c"))
            table.extend([(v,) for v in values])
            catalog.register(table.schema, collect_table_stats(table, buckets=20))
        query = Query.build(
            ["L", "R"], [join_predicate("L", "c", "R", "c")], Projection(count_star=True)
        )
        plain = JoinSizeEstimator(query, catalog, ELS).estimate(["L", "R"])
        extended = JoinSizeEstimator(
            query, catalog, ELS.but(use_frequency_stats=True)
        ).estimate(["L", "R"])
        exact = truth(left_values, right_values)
        assert abs(extended - exact) < abs(plain - exact) / 2
