"""Urn model tests: the paper's Section 5 anchors plus invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.urn import expected_distinct, proportional_distinct, urn_distinct


class TestPaperAnchors:
    def test_section5_numeric_example(self):
        """d_x = 10000, ||R|| = 100000, ||R||' = 50000 -> urn gives 9933."""
        assert urn_distinct(10000, 50000) == 9933

    def test_section5_proportional_comparison(self):
        """The 'other common estimate' gives 5000 on the same numbers."""
        assert proportional_distinct(10000, 50000, 100000) == 5000.0

    def test_section5_full_selection(self):
        """||R||' = ||R|| -> urn estimate is (essentially) d_x = 10000."""
        assert urn_distinct(10000, 100000) == 10000

    def test_section6_group_cardinality(self):
        """d_y = 10, ||R2||' = 20 -> ceil(10 * (1 - 0.9^20)) = 9."""
        assert urn_distinct(10, 20) == 9


class TestExpectedDistinct:
    def test_zero_rows(self):
        assert expected_distinct(100, 0) == 0.0

    def test_zero_urns(self):
        assert expected_distinct(0, 10) == 0.0

    def test_single_urn(self):
        assert expected_distinct(1, 5) == 1.0

    def test_one_ball(self):
        assert expected_distinct(10, 1) == pytest.approx(1.0)

    def test_closed_form_matches_direct_power(self):
        n, k = 50, 120
        direct = n * (1 - (1 - 1 / n) ** k)
        assert expected_distinct(n, k) == pytest.approx(direct, rel=1e-12)

    def test_fractional_rows_accepted(self):
        value = expected_distinct(10, 2.5)
        assert 0 < value < 10

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            expected_distinct(-1, 5)
        with pytest.raises(ValueError):
            expected_distinct(5, -1)

    def test_numerically_stable_for_huge_inputs(self):
        value = expected_distinct(10**9, 10**12)
        assert value == pytest.approx(10**9, rel=1e-6)
        assert not math.isnan(value)


class TestUrnDistinct:
    def test_never_exceeds_distinct(self):
        assert urn_distinct(10, 10**9) == 10

    def test_ceiling_applied(self):
        # E = 10 * (1 - 0.9^2) = 1.9 -> ceil -> 2
        assert urn_distinct(10, 2) == 2

    def test_zero_cases(self):
        assert urn_distinct(0, 5) == 0
        assert urn_distinct(5, 0) == 0


class TestProportional:
    def test_full_selection_is_identity(self):
        assert proportional_distinct(100, 1000, 1000) == 100.0

    def test_clamped_at_full(self):
        assert proportional_distinct(100, 2000, 1000) == 100.0

    def test_empty_table(self):
        assert proportional_distinct(10, 0, 0) == 0.0
        with pytest.raises(ValueError):
            proportional_distinct(10, 5, 0)


class TestProperties:
    @given(
        n=st.integers(min_value=1, max_value=10**6),
        k=st.integers(min_value=0, max_value=10**7),
    )
    @settings(max_examples=120, deadline=None)
    def test_bounds(self, n, k):
        """0 <= E <= min(n, k) always (cannot fill more urns than balls)."""
        value = expected_distinct(n, k)
        assert 0.0 <= value <= min(n, k) + 1e-9

    @given(
        n=st.integers(min_value=2, max_value=10**4),
        k=st.integers(min_value=1, max_value=10**5),
    )
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_balls(self, n, k):
        assert expected_distinct(n, k + 1) >= expected_distinct(n, k)

    @given(
        k=st.integers(min_value=2, max_value=10**5),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_urn_at_least_proportional_in_papers_regime(self, k, data):
        """Selecting half the rows of a table with >= 2 rows per distinct
        value keeps more distincts than proportional scaling suggests —
        the Section 5 comparison (9933 vs 5000) generalizes throughout
        this regime (k = N/2, rows-per-value N/n >= 2)."""
        n = data.draw(st.integers(min_value=1, max_value=k))
        total = 2 * k
        urn = expected_distinct(n, k)
        proportional = proportional_distinct(n, k, total)
        assert urn >= proportional - 1e-9
