"""Layout and predicate compilation tests."""

import pytest

from repro.errors import ExecutionError
from repro.execution import Layout, compile_conjunction, compile_join_condition, compile_predicate
from repro.sql import ColumnRef, Op, join_predicate, local_predicate
from repro.sql.predicates import ComparisonPredicate


def layout_r():
    return Layout([ColumnRef("R", "x"), ColumnRef("R", "y")])


class TestLayout:
    def test_positions(self):
        layout = layout_r()
        assert layout.position(ColumnRef("R", "x")) == 0
        assert layout.position(ColumnRef("R", "y")) == 1

    def test_contains(self):
        layout = layout_r()
        assert ColumnRef("R", "x") in layout
        assert ColumnRef("S", "x") not in layout

    def test_unknown_column_raises(self):
        with pytest.raises(ExecutionError):
            layout_r().position(ColumnRef("Z", "q"))

    def test_duplicate_rejected(self):
        with pytest.raises(ExecutionError):
            Layout([ColumnRef("R", "x"), ColumnRef("R", "x")])

    def test_concat(self):
        left = layout_r()
        right = Layout([ColumnRef("S", "z")])
        combined = left.concat(right)
        assert len(combined) == 3
        assert combined.position(ColumnRef("S", "z")) == 2


class TestCompilePredicate:
    def test_constant_comparison(self):
        check = compile_predicate(local_predicate("R", "x", Op.LT, 5), layout_r())
        assert check((3, 0)) and not check((7, 0))

    def test_column_column_comparison(self):
        pred = ComparisonPredicate(ColumnRef("R", "x"), Op.EQ, ColumnRef("R", "y"))
        check = compile_predicate(pred, layout_r())
        assert check((4, 4)) and not check((4, 5))

    def test_conjunction_all_must_hold(self):
        check = compile_conjunction(
            [
                local_predicate("R", "x", Op.GE, 2),
                local_predicate("R", "x", Op.LE, 4),
            ],
            layout_r(),
        )
        assert check((3, 0))
        assert not check((1, 0)) and not check((5, 0))

    def test_empty_conjunction_true(self):
        assert compile_conjunction([], layout_r())((1, 2))


class TestCompileJoinCondition:
    LEFT = Layout([ColumnRef("R", "x"), ColumnRef("R", "y")])
    RIGHT = Layout([ColumnRef("S", "a"), ColumnRef("S", "b")])

    def test_equi_keys_extracted(self):
        keys, residual = compile_join_condition(
            [join_predicate("R", "x", "S", "a")], self.LEFT, self.RIGHT
        )
        assert keys == [(0, 0)]
        assert residual((1, 2), (1, 9))

    def test_key_direction_normalized(self):
        """S.a = R.x with R on the left still yields (left_pos, right_pos)."""
        pred = ComparisonPredicate(ColumnRef("S", "a"), Op.EQ, ColumnRef("R", "x"))
        keys, _ = compile_join_condition([pred], self.LEFT, self.RIGHT)
        assert keys == [(0, 0)]

    def test_non_equi_becomes_residual(self):
        keys, residual = compile_join_condition(
            [join_predicate("R", "x", "S", "a", Op.LT)], self.LEFT, self.RIGHT
        )
        assert keys == []
        assert residual((1, 0), (2, 0))
        assert not residual((3, 0), (2, 0))

    def test_swapped_non_equi_flips_operator(self):
        pred = ComparisonPredicate(ColumnRef("S", "a"), Op.LT, ColumnRef("R", "x"))
        _, residual = compile_join_condition([pred], self.LEFT, self.RIGHT)
        # S.a < R.x means left row x must exceed right row a.
        assert residual((5, 0), (3, 0))
        assert not residual((2, 0), (3, 0))

    def test_constant_predicate_on_either_side(self):
        _, residual = compile_join_condition(
            [local_predicate("R", "x", Op.GT, 10), local_predicate("S", "b", Op.EQ, 7)],
            self.LEFT,
            self.RIGHT,
        )
        assert residual((11, 0), (0, 7))
        assert not residual((9, 0), (0, 7))
        assert not residual((11, 0), (0, 8))

    def test_same_side_column_comparison(self):
        pred = ComparisonPredicate(ColumnRef("R", "x"), Op.EQ, ColumnRef("R", "y"))
        keys, residual = compile_join_condition([pred], self.LEFT, self.RIGHT)
        assert keys == []
        assert residual((4, 4), (0, 0))
        assert not residual((4, 5), (0, 0))

    def test_foreign_column_rejected(self):
        with pytest.raises(ExecutionError):
            compile_join_condition(
                [join_predicate("R", "x", "Z", "q")], self.LEFT, self.RIGHT
            )

    def test_multiple_keys(self):
        keys, _ = compile_join_condition(
            [
                join_predicate("R", "x", "S", "a"),
                join_predicate("R", "y", "S", "b"),
            ],
            self.LEFT,
            self.RIGHT,
        )
        assert sorted(keys) == [(0, 0), (1, 1)]
