"""Tokenizer tests: every token class, positions, and failure modes."""

import pytest

from repro.errors import ParseError
from repro.sql.lexer import Token, TokenType, tokenize


def kinds(text):
    return [t.type for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_whitespace_only_yields_only_eof(self):
        tokens = tokenize("   \t\n  ")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_keywords_are_case_insensitive(self):
        for word in ("select", "SELECT", "SeLeCt"):
            token = tokenize(word)[0]
            assert token.type is TokenType.KEYWORD
            assert token.text == "SELECT"

    def test_all_keywords_recognized(self):
        for word in ("SELECT", "FROM", "WHERE", "AND", "AS", "COUNT"):
            assert tokenize(word)[0].type is TokenType.KEYWORD

    def test_identifier_not_keyword(self):
        token = tokenize("selecting")[0]
        assert token.type is TokenType.IDENT
        assert token.text == "selecting"

    def test_identifier_with_underscore_and_digits(self):
        token = tokenize("col_1x")[0]
        assert token.type is TokenType.IDENT
        assert token.text == "col_1x"

    def test_identifier_preserves_case(self):
        assert tokenize("MyTable")[0].text == "MyTable"


class TestNumbers:
    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.NUMBER
        assert token.value == 42
        assert isinstance(token.value, int)

    def test_float_literal(self):
        token = tokenize("3.25")[0]
        assert token.value == 3.25
        assert isinstance(token.value, float)

    def test_negative_integer(self):
        token = tokenize("-17")[0]
        assert token.type is TokenType.NUMBER
        assert token.value == -17

    def test_qualified_name_not_parsed_as_float(self):
        # "R1.x" must be IDENT DOT IDENT, not a number.
        token_types = kinds("R1.x")[:-1]
        assert token_types == [TokenType.IDENT, TokenType.DOT, TokenType.IDENT]

    def test_number_followed_by_dot_identifier(self):
        # "1.x" lexes the 1 as a number and keeps .x separate.
        tokens = tokenize("1.x")
        assert tokens[0].type is TokenType.NUMBER
        assert tokens[0].value == 1
        assert tokens[1].type is TokenType.DOT


class TestStrings:
    def test_string_literal(self):
        token = tokenize("'hello'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "hello"

    def test_empty_string(self):
        token = tokenize("''")[0]
        assert token.value == ""

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("'oops")
        assert "unterminated" in str(excinfo.value)

    def test_string_with_spaces(self):
        assert tokenize("'a b c'")[0].value == "a b c"


class TestOperators:
    @pytest.mark.parametrize(
        "text,expected",
        [("=", "="), ("<", "<"), ("<=", "<="), (">", ">"), (">=", ">="), ("<>", "<>")],
    )
    def test_operator_token(self, text, expected):
        token = tokenize(text)[0]
        assert token.type is TokenType.OPERATOR
        assert token.text == expected

    def test_bang_equals_normalized(self):
        assert tokenize("!=")[0].text == "<>"

    def test_two_char_operators_win_over_one_char(self):
        tokens = tokenize("a<=b")
        assert tokens[1].text == "<="

    def test_adjacent_comparisons(self):
        assert texts("a<b") == ["a", "<", "b"]


class TestPunctuation:
    def test_punctuation_tokens(self):
        token_types = kinds("( ) , * .")[:-1]
        assert token_types == [
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.COMMA,
            TokenType.STAR,
            TokenType.DOT,
        ]

    def test_unexpected_character_raises_with_position(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("a = ;")
        assert excinfo.value.position == 4


class TestPositions:
    def test_positions_are_character_offsets(self):
        tokens = tokenize("SELECT x")
        assert tokens[0].position == 0
        assert tokens[1].position == 7

    def test_eof_position_is_end_of_text(self):
        text = "SELECT *"
        assert tokenize(text)[-1].position == len(text)


class TestFullStatement:
    def test_experiment_query_token_stream(self):
        tokens = tokenize("SELECT COUNT(*) FROM S, M WHERE s = m AND s < 100")
        token_types = [t.type for t in tokens]
        assert token_types.count(TokenType.KEYWORD) == 5  # SELECT COUNT FROM WHERE AND
        assert tokens[-1].type is TokenType.EOF

    def test_is_keyword_helper(self):
        token = tokenize("AND")[0]
        assert token.is_keyword("AND")
        assert not token.is_keyword("WHERE")
        assert not Token(TokenType.IDENT, "AND", 0).is_keyword("AND")
