"""Tests for the ELS7xx contract-and-architecture layer.

Covers the directive hygiene and data-file errors (ELS700), protocol
conformance (ELS701/ELS702), the exception-contract fixpoint
(ELS703-ELS705), layering and cycle detection (ELS706), API-baseline
drift (ELS707), the committed data files themselves (the manifest must
cover every subpackage; the baseline must be regeneration-stable), the
engine integration (``contracts=`` flag, noqa, incremental cache), and
regressions for the tree-wide dogfooding fixes this layer forced.
"""

import ast
import pathlib
import textwrap

import pytest

from repro.errors import LintError
from repro.lint.cache import LintCache
from repro.lint.contracts import (
    CONTRACT_CODES,
    BaselineError,
    ManifestError,
    analyze_modules,
    analyze_source,
    generate_baseline,
    load_baseline,
    load_manifest,
    module_name_of,
    render_baseline,
)
from repro.lint.contracts.architecture import (
    DEFAULT_MANIFEST_PATH,
    check_layering,
    find_cycles,
    module_imports,
    parse_toml_subset,
)
from repro.lint.contracts.baseline import (
    DEFAULT_BASELINE_PATH,
    compare_module,
    entry_payload,
    extract_api,
)
from repro.lint.engine import known_codes, lint_paths, lint_source

ROOT = pathlib.Path(__file__).parent.parent

MANIFEST = """
[[tier]]
name = "low"
modules = ["core"]

[[tier]]
name = "high"
modules = ["analysis"]
"""


def write_manifest(tmp_path, text=MANIFEST):
    path = tmp_path / "layers.toml"
    path.write_text(textwrap.dedent(text))
    return str(path)


def write_baseline(tmp_path, sources):
    """A baseline file recording the given ``{module: source}`` set."""
    payload = {}
    for name, module_source in sources.items():
        entry = extract_api(ast.parse(textwrap.dedent(module_source)))
        if entry is not None:
            payload[name] = entry_payload(entry)
    path = tmp_path / "api-baseline.json"
    path.write_text(render_baseline(payload))
    return str(path)


def run(tmp_path, source, path="src/repro/core/mod.py", baseline_from=None):
    """Analyze one module with an isolated manifest and baseline."""
    source = textwrap.dedent(source)
    module = module_name_of(path)
    recorded = baseline_from if baseline_from is not None else source
    sources = {module: recorded} if module else {}
    return analyze_source(
        source,
        path,
        manifest_path=write_manifest(tmp_path),
        baseline_path=write_baseline(tmp_path, sources),
    )


def run_codes(tmp_path, source, **kwargs):
    return [d.code for d in run(tmp_path, source, **kwargs)]


class _FakeModule:
    def __init__(self, path, source):
        self.path = path
        self.source = textwrap.dedent(source)
        self.tree = ast.parse(self.source)
        self.is_test_file = False


EXCEPTION_PRELUDE = '''
"""Module under contract lint."""

__all__ = ["run"]


class ReproError(Exception):
    """Structured base."""


class ZError(ReproError):
    """A structured failure."""


class Rogue(Exception):
    """An unstructured failure."""
'''


class TestELS700:
    def test_misplaced_registers_directive_fires(self, tmp_path):
        assert "ELS700" in run_codes(
            tmp_path,
            '''
            """M."""

            X = 1  # els: registers=Sizer
            ''',
        )

    def test_registers_on_def_line_is_clean(self, tmp_path):
        source = '''
        """M."""

        from typing import Protocol


        class Sizer(Protocol):
            """P."""

            def area(self) -> float:
                """A."""
                ...


        def register(name):  # els: registers=Sizer
            """R."""
            return lambda cls: cls
        '''
        assert "ELS700" not in run_codes(tmp_path, source)

    def test_unknown_protocol_fires_at_registrar(self, tmp_path):
        findings = run(
            tmp_path,
            '''
            """M."""


            def register(name):  # els: registers=Ghost
                """R."""
                return lambda cls: cls
            ''',
        )
        codes = [d.code for d in findings]
        assert "ELS700" in codes

    def test_unreadable_manifest_fires_once(self, tmp_path):
        bad = tmp_path / "layers.toml"
        bad.write_text("[[tier]\nbroken")
        findings = analyze_source(
            '"""M."""\n',
            "src/repro/core/mod.py",
            manifest_path=str(bad),
            baseline_path=write_baseline(tmp_path, {}),
        )
        assert [d.code for d in findings] == ["ELS700"]
        assert "manifest" in findings[0].message

    def test_unreadable_baseline_fires_once(self, tmp_path):
        bad = tmp_path / "api-baseline.json"
        bad.write_text("{not json")
        findings = analyze_source(
            '"""M."""\n',
            "src/repro/core/mod.py",
            manifest_path=write_manifest(tmp_path),
            baseline_path=str(bad),
        )
        assert [d.code for d in findings] == ["ELS700"]
        assert "baseline" in findings[0].message


PROTOCOL_TEMPLATE = '''
"""M."""

from typing import Protocol


class Sizer(Protocol):
    """P."""

    def area(self, scale: float = 1.0) -> float:
        """A."""
        ...


def register(name):  # els: registers=Sizer
    """R."""
    return lambda cls: cls


@register("box")
class Box:
    """B."""
{body}
'''


def protocol_codes(body):
    source = PROTOCOL_TEMPLATE.format(body=textwrap.indent(body, "    "))
    return [d.code for d in analyze_source(source, "pkg/mod.py")]


class TestProtocolConformance:
    def test_missing_method_is_els701(self):
        assert "ELS701" in protocol_codes("\npass\n")

    def test_conforming_class_is_clean(self):
        assert protocol_codes(
            '''
def area(self, scale: float = 1.0) -> float:
    """A."""
    return scale
'''
        ) == []

    def test_parameter_name_mismatch_is_els702(self):
        assert "ELS702" in protocol_codes(
            '''
def area(self, factor: float = 1.0) -> float:
    """A."""
    return factor
'''
        )

    def test_missing_default_is_els702(self):
        assert "ELS702" in protocol_codes(
            '''
def area(self, scale):
    """A."""
    return scale
'''
        )

    def test_flexible_star_tail_is_accepted(self):
        assert protocol_codes(
            '''
def area(self, *args, **kwargs):
    """A."""
    return 0.0
'''
        ) == []

    def test_extra_parameter_with_default_is_accepted(self):
        assert protocol_codes(
            '''
def area(self, scale: float = 1.0, extra=None) -> float:
    """A."""
    return scale
'''
        ) == []

    def test_inherited_method_satisfies_protocol(self):
        source = '''
"""M."""

from typing import Protocol


class Sizer(Protocol):
    """P."""

    def area(self, scale: float = 1.0) -> float:
        """A."""
        ...


def register(name):  # els: registers=Sizer
    """R."""
    return lambda cls: cls


class Base:
    """Base impl."""

    def area(self, scale: float = 1.0) -> float:
        """A."""
        return scale


@register("box")
class Box(Base):
    """B."""
'''
        assert [d.code for d in analyze_source(source, "pkg/mod.py")] == []

    def test_quantity_contradiction_is_els702(self):
        source = '''
"""M."""

from typing import Protocol


class Sizer(Protocol):
    """P."""

    def level(self) -> float:  # els: quantity=selectivity
        """L."""
        ...


def register(name):  # els: registers=Sizer
    """R."""
    return lambda cls: cls


@register("box")
class Box:
    """B."""

    def level(self) -> float:  # els: quantity=cardinality
        """L."""
        return 1.0
'''
        assert "ELS702" in [d.code for d in analyze_source(source, "pkg/mod.py")]


class TestELS703:
    def test_unstructured_escape_from_public_function(self, tmp_path):
        findings = run(
            tmp_path,
            EXCEPTION_PRELUDE
            + '''

def run():
    """Run."""
    raise Rogue("boom")
''',
        )
        els703 = [d for d in findings if d.code == "ELS703"]
        assert len(els703) == 1
        assert "Rogue" in els703[0].message

    def test_structured_escape_is_clean(self, tmp_path):
        codes = run_codes(
            tmp_path,
            EXCEPTION_PRELUDE
            + '''

def run():
    """Run.

    Raises:
        ZError: always.
    """
    raise ZError("boom")
''',
        )
        assert "ELS703" not in codes

    def test_escape_through_a_callee_is_found(self, tmp_path):
        findings = run(
            tmp_path,
            EXCEPTION_PRELUDE
            + '''

def _helper():
    raise Rogue("boom")


def run():
    """Run."""
    return _helper()
''',
        )
        assert "ELS703" in [d.code for d in findings]

    def test_private_function_is_exempt(self, tmp_path):
        codes = run_codes(
            tmp_path,
            EXCEPTION_PRELUDE
            + '''

def _internal():
    raise Rogue("boom")
''',
        )
        assert "ELS703" not in codes

    def test_caught_exception_does_not_escape(self, tmp_path):
        codes = run_codes(
            tmp_path,
            EXCEPTION_PRELUDE
            + '''

def run():
    """Run.

    Raises:
        ZError: on failure.
    """
    try:
        raise Rogue("boom")
    except Rogue as exc:
        raise ZError(str(exc)) from exc
''',
        )
        assert "ELS703" not in codes


class TestELS704:
    SWALLOW = EXCEPTION_PRELUDE + '''

def _helper():
    raise ZError("boom")


def run():
    """Run."""
    try:
        return _helper()
    except Exception:
        return None
'''

    def test_broad_silent_swallow_fires(self, tmp_path):
        findings = run(tmp_path, self.SWALLOW)
        els704 = [d for d in findings if d.code == "ELS704"]
        assert len(els704) == 1
        assert "ZError" in els704[0].message

    def test_reraise_is_not_silent(self, tmp_path):
        codes = run_codes(
            tmp_path,
            EXCEPTION_PRELUDE
            + '''

def _helper():
    raise ZError("boom")


def run():
    """Run."""
    try:
        return _helper()
    except Exception:
        raise
''',
        )
        assert "ELS704" not in codes

    def test_specific_handler_is_not_broad(self, tmp_path):
        codes = run_codes(
            tmp_path,
            EXCEPTION_PRELUDE
            + '''

def _helper():
    raise ZError("boom")


def run():
    """Run."""
    try:
        return _helper()
    except ZError:
        return None
''',
        )
        assert "ELS704" not in codes

    def test_cli_modules_are_exempt(self, tmp_path):
        codes = run_codes(tmp_path, self.SWALLOW, path="src/repro/core/cli.py")
        assert "ELS704" not in codes


class TestELS705:
    def test_undocumented_structured_raise_warns(self, tmp_path):
        findings = run(
            tmp_path,
            EXCEPTION_PRELUDE
            + '''

def run():
    """Run without a Raises section."""
    raise ZError("boom")
''',
        )
        els705 = [d for d in findings if d.code == "ELS705"]
        assert len(els705) == 1
        assert els705[0].severity.value == "warning"

    def test_phantom_documented_error_warns(self, tmp_path):
        findings = run(
            tmp_path,
            EXCEPTION_PRELUDE
            + '''

def run():
    """Run.

    Raises:
        ZError: never, actually.
    """
    return 1
''',
        )
        assert "ELS705" in [d.code for d in findings]

    def test_matching_raises_section_is_clean(self, tmp_path):
        codes = run_codes(
            tmp_path,
            EXCEPTION_PRELUDE
            + '''

def run():
    """Run.

    Raises:
        ZError: always.
    """
    raise ZError("boom")
''',
        )
        assert "ELS705" not in codes

    def test_documented_base_class_covers_subtype_raise(self, tmp_path):
        codes = run_codes(
            tmp_path,
            EXCEPTION_PRELUDE
            + '''

def run():
    """Run.

    Raises:
        ReproError: on any failure.
    """
    raise ZError("boom")
''',
        )
        assert "ELS705" not in codes


class TestELS706:
    def test_upward_import_fires(self, tmp_path):
        findings = run(
            tmp_path,
            '''
            """M."""

            from ..analysis.stats import compute

            __all__ = ["compute"]
            ''',
        )
        els706 = [d for d in findings if d.code == "ELS706"]
        assert len(els706) == 1
        assert "strictly lower tier" in els706[0].message

    def test_function_level_import_is_the_escape_hatch(self, tmp_path):
        codes = run_codes(
            tmp_path,
            '''
            """M."""


            def late():
                """L."""
                from ..analysis.stats import compute

                return compute
            ''',
        )
        assert "ELS706" not in codes

    def test_downward_import_is_clean(self, tmp_path):
        codes = run_codes(
            tmp_path,
            '''
            """M."""

            from ..core.mod import thing
            ''',
            path="src/repro/analysis/stats.py",
        )
        assert "ELS706" not in codes

    def test_same_tier_cross_package_import_fires(self, tmp_path):
        manifest = write_manifest(
            tmp_path,
            """
            [[tier]]
            name = "low"
            modules = ["core", "catalog"]
            """,
        )
        findings = analyze_source(
            '"""M."""\n\nfrom ..catalog.stats import Catalog\n',
            "src/repro/core/mod.py",
            manifest_path=manifest,
            baseline_path=write_baseline(tmp_path, {}),
        )
        messages = [d.message for d in findings if d.code == "ELS706"]
        assert any("its own tier" in m for m in messages)

    def test_facade_import_fires(self, tmp_path):
        findings = run(tmp_path, '"""M."""\n\nimport repro\n')
        messages = [d.message for d in findings if d.code == "ELS706"]
        assert any("facade" in m for m in messages)

    def test_undeclared_subpackage_fires(self, tmp_path):
        findings = run(
            tmp_path, '"""M."""\n', path="src/repro/mystery/mod.py"
        )
        messages = [d.message for d in findings if d.code == "ELS706"]
        assert any("no tier" in m for m in messages)

    def test_import_cycle_is_reported_once(self, tmp_path):
        modules = [
            _FakeModule(
                "src/repro/core/a.py",
                '"""A."""\n\nfrom .b import beta\n',
            ),
            _FakeModule(
                "src/repro/core/b.py",
                '"""B."""\n\nfrom .a import alpha\n',
            ),
        ]
        findings = analyze_modules(
            modules,
            manifest_path=write_manifest(tmp_path),
            baseline_path=write_baseline(tmp_path, {}),
        )
        cycles = [d for d in findings if d.code == "ELS706"]
        assert len(cycles) == 1
        assert "cycle" in cycles[0].message
        assert cycles[0].file == "src/repro/core/a.py"


PUBLIC_V1 = '''
"""M."""

__all__ = ["f", "g"]


def f(x: int = 1) -> int:
    """F."""
    return x


def g() -> int:
    """G."""
    return 2
'''

PUBLIC_V2_REMOVED = '''
"""M."""

__all__ = ["f"]


def f(x: int = 1) -> int:
    """F."""
    return x
'''

PUBLIC_V3_RESIGNED = '''
"""M."""

__all__ = ["f", "g"]


def f(x: int = 2) -> int:
    """F."""
    return x


def g() -> int:
    """G."""
    return 2
'''


class TestELS707:
    def test_unchanged_surface_is_clean(self, tmp_path):
        assert "ELS707" not in run_codes(tmp_path, PUBLIC_V1)

    def test_removed_name_fires(self, tmp_path):
        findings = run(
            tmp_path, PUBLIC_V2_REMOVED, baseline_from=PUBLIC_V1
        )
        els707 = [d for d in findings if d.code == "ELS707"]
        assert len(els707) == 1
        assert "'g' removed" in els707[0].message

    def test_new_name_fires(self, tmp_path):
        findings = run(tmp_path, PUBLIC_V1, baseline_from=PUBLIC_V2_REMOVED)
        messages = [d.message for d in findings if d.code == "ELS707"]
        assert any("new public name 'g'" in m for m in messages)

    def test_signature_change_fires(self, tmp_path):
        findings = run(tmp_path, PUBLIC_V3_RESIGNED, baseline_from=PUBLIC_V1)
        messages = [d.message for d in findings if d.code == "ELS707"]
        assert any("signature of 'f' changed" in m for m in messages)

    def test_unrecorded_module_fires(self, tmp_path):
        findings = analyze_source(
            textwrap.dedent(PUBLIC_V1),
            "src/repro/core/mod.py",
            manifest_path=write_manifest(tmp_path),
            baseline_path=write_baseline(tmp_path, {}),
        )
        messages = [d.message for d in findings if d.code == "ELS707"]
        assert any("does not record" in m for m in messages)

    def test_dynamic_all_after_recorded_surface_fires(self, tmp_path):
        findings = run(
            tmp_path,
            '"""M."""\n\n__all__ = sorted(["f"])\n',
            baseline_from=PUBLIC_V1,
        )
        messages = [d.message for d in findings if d.code == "ELS707"]
        assert any("static '__all__'" in m for m in messages)

    def test_removed_module_is_reported_globally(self, tmp_path):
        facade = _FakeModule("src/repro/__init__.py", '"""Facade."""\n')
        baseline = tmp_path / "api-baseline.json"
        baseline.write_text(
            render_baseline(
                {"repro.ghost": {"all": ["f"], "signatures": {"f": "def()"}}}
            )
        )
        findings = analyze_modules(
            [facade],
            manifest_path=write_manifest(tmp_path),
            baseline_path=str(baseline),
        )
        messages = [d.message for d in findings if d.code == "ELS707"]
        assert any("repro.ghost" in m for m in messages)


class TestCommittedDataFiles:
    def test_manifest_loads(self):
        manifest = load_manifest()
        assert manifest.tiers
        assert manifest.tier_of["errors"] == 0

    def test_manifest_covers_every_subpackage(self):
        manifest = load_manifest()
        package_root = ROOT / "src" / "repro"
        subpackages = {
            child.name
            for child in package_root.iterdir()
            if child.is_dir() and (child / "__init__.py").exists()
        }
        top_modules = {
            child.stem
            for child in package_root.glob("*.py")
            if child.stem != "__init__"
        }
        undeclared = (subpackages | top_modules) - set(manifest.tier_of)
        assert not undeclared, f"layers.toml misses {sorted(undeclared)}"

    def test_committed_baseline_is_regeneration_stable(self):
        generated = generate_baseline(ROOT / "src" / "repro")
        assert render_baseline(generated) == DEFAULT_BASELINE_PATH.read_text()

    def test_committed_baseline_loads(self):
        baseline = load_baseline()
        assert "repro.core.estimator" in baseline

    def test_toml_subset_parses_the_real_manifest(self):
        data = parse_toml_subset(DEFAULT_MANIFEST_PATH.read_text())
        assert isinstance(data["tier"], list)

    def test_toml_subset_rejects_garbage(self):
        with pytest.raises(ManifestError):
            parse_toml_subset("key = unquoted words\n")


class TestEngineIntegration:
    def test_contract_codes_are_known(self):
        codes = known_codes()
        for number in range(700, 708):
            assert f"ELS{number}" in codes
        assert set(CONTRACT_CODES) <= set(codes)

    def test_lint_source_contracts_flag(self):
        source = PROTOCOL_TEMPLATE.format(body="    pass")
        with_pass = lint_source(source, "pkg/mod.py", contracts=True)
        without = lint_source(source, "pkg/mod.py")
        assert "ELS701" in [d.code for d in with_pass]
        assert "ELS701" not in [d.code for d in without]

    def test_noqa_suppresses_contract_finding(self):
        source = PROTOCOL_TEMPLATE.format(body="    pass").replace(
            'class Box:', 'class Box:  # els: noqa[ELS701]'
        )
        diagnostics = lint_source(source, "pkg/mod.py", contracts=True)
        codes = [d.code for d in diagnostics]
        assert "ELS701" not in codes
        assert "ELS199" not in codes

    def test_warm_cache_is_byte_identical_with_contracts(self, tmp_path):
        tree = tmp_path / "pkg"
        tree.mkdir()
        (tree / "mod.py").write_text(
            PROTOCOL_TEMPLATE.format(body="    pass")
        )
        root = str(tmp_path / "cache")
        reference = lint_paths([str(tree)], contracts=True)
        cold = lint_paths([str(tree)], contracts=True, cache=LintCache(root))
        warm_cache = LintCache(root)
        warm = lint_paths([str(tree)], contracts=True, cache=warm_cache)
        assert cold == reference
        assert warm == reference
        assert warm_cache.stats.file_misses == 0
        assert warm_cache.stats.component_misses == 0
        assert "ELS701" in [d.code for d in warm]

    def test_edit_invalidates_global_half(self, tmp_path):
        tree = tmp_path / "pkg"
        tree.mkdir()
        source = PROTOCOL_TEMPLATE.format(body="    pass")
        (tree / "mod.py").write_text(source)
        root = str(tmp_path / "cache")
        before = lint_paths([str(tree)], contracts=True, cache=LintCache(root))
        assert "ELS701" in [d.code for d in before]
        (tree / "mod.py").write_text(
            source
            + '\n    def area(self, scale: float = 1.0) -> float:\n'
            + '        """A."""\n'
            + '        return scale\n'
        )
        after = lint_paths([str(tree)], contracts=True, cache=LintCache(root))
        assert "ELS701" not in [d.code for d in after]
        assert after == lint_paths([str(tree)], contracts=True)


class TestDogfoodRegressions:
    """The tree-wide fixes this layer forced must not regress."""

    def test_contract_errors_are_structured(self):
        assert issubclass(ManifestError, LintError)
        assert issubclass(BaselineError, LintError)

    def test_lint_tier_has_no_module_level_core_imports(self):
        """semantic.py's core imports went lazy to satisfy layers.toml."""
        path = ROOT / "src" / "repro" / "lint" / "semantic.py"
        tree = ast.parse(path.read_text())
        rows = module_imports("repro.lint.semantic", str(path), tree)
        upward = [t for _line, t, _names in rows if t.startswith("repro.core")]
        assert upward == []

    def test_main_module_is_its_own_tier(self):
        """``repro.__main__`` -> ``repro.cli`` needs entry above interface."""
        manifest = load_manifest()
        assert (
            manifest.tier_of["__main__"] > manifest.tier_of["cli"]
        )

    @pytest.mark.parametrize(
        "relative,function,error",
        [
            ("workloads/queries.py", "chain_workload", "WorkloadError"),
            ("core/rules.py", "join_selectivity", "EstimationError"),
            ("sql/parser.py", "parse_predicate", "ParseError"),
            ("catalog/histogram.py", "build_mcv", "CatalogError"),
        ],
    )
    def test_public_raisers_document_their_errors(
        self, relative, function, error
    ):
        path = ROOT / "src" / "repro" / relative
        tree = ast.parse(path.read_text())
        node = next(
            n
            for n in tree.body
            if isinstance(n, ast.FunctionDef) and n.name == function
        )
        docstring = ast.get_docstring(node)
        assert docstring is not None
        assert "Raises:" in docstring
        assert error in docstring

    def test_real_layering_check_is_clean_for_semantic(self):
        manifest = load_manifest()
        path = ROOT / "src" / "repro" / "lint" / "semantic.py"
        tree = ast.parse(path.read_text())
        assert (
            check_layering("repro.lint.semantic", str(path), tree, manifest)
            == []
        )

    def test_no_cycles_in_the_real_tree(self):
        named = []
        for source in sorted((ROOT / "src" / "repro").rglob("*.py")):
            name = module_name_of(str(source))
            if name is None:
                continue
            named.append((name, str(source), ast.parse(source.read_text())))
        assert find_cycles(named) == []
