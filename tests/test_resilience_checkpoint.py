"""Checkpoint files: fingerprints, torn lines, and sweep resume."""

import json
import random

import pytest

from repro.analysis.harness import evaluate_workloads
from repro.errors import CheckpointError
from repro.resilience import (
    RetryPolicy,
    append_checkpoint,
    fingerprint_of,
    load_checkpoint,
)
from repro.workloads import chain_workload

FAST_RETRY = RetryPolicy(max_attempts=2, base_delay_s=0.0)


def small_workloads(count=3):
    return [
        chain_workload(3, random.Random(200 + i), max_rows=600)
        for i in range(count)
    ]


class TestFingerprint:
    def test_is_deterministic(self):
        assert fingerprint_of(["a", "b"]) == fingerprint_of(["a", "b"])

    def test_length_prefixing_prevents_boundary_collisions(self):
        assert fingerprint_of(["ab", "c"]) != fingerprint_of(["a", "bc"])

    def test_order_matters(self):
        assert fingerprint_of(["a", "b"]) != fingerprint_of(["b", "a"])


class TestLoadAndAppend:
    def test_missing_file_is_an_empty_checkpoint(self, tmp_path):
        assert load_checkpoint(str(tmp_path / "absent.jsonl")) == {}

    def test_round_trips_one_entry(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        records = [{"algorithm": "ELS", "estimate": 10.5, "actual": 12}]
        append_checkpoint(path, "deadbeef", 0, records)
        loaded = load_checkpoint(path)
        assert loaded["deadbeef"]["index"] == 0
        assert loaded["deadbeef"]["records"] == records

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        append_checkpoint(path, "aa", 0, [])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"fingerprint": "bb", "index": 1, "rec')  # torn
        loaded = load_checkpoint(path)
        assert set(loaded) == {"aa"}

    def test_blank_lines_are_ignored(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        append_checkpoint(path, "aa", 0, [])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        assert set(load_checkpoint(path)) == {"aa"}

    def test_valid_json_without_structure_raises(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"something": "else"}) + "\n")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_missing_records_list_raises(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"fingerprint": "aa", "index": 0}) + "\n")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_unreadable_path_raises(self, tmp_path):
        directory = tmp_path / "is_a_dir"
        directory.mkdir()
        with pytest.raises(CheckpointError):
            load_checkpoint(str(directory))
        with pytest.raises(CheckpointError):
            append_checkpoint(str(directory), "aa", 0, [])


class TestSweepResume:
    def test_checkpointed_sweep_writes_one_line_per_payload(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        workloads = small_workloads(3)
        evaluate_workloads(
            workloads, seed=5, retry=FAST_RETRY, checkpoint_path=path
        )
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 3

    def test_resume_skips_completed_payloads_and_matches(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        workloads = small_workloads(3)
        first = evaluate_workloads(
            workloads, seed=5, retry=FAST_RETRY, checkpoint_path=path
        )
        resumed = evaluate_workloads(
            workloads, seed=5, retry=FAST_RETRY, checkpoint_path=path
        )
        assert repr(resumed) == repr(first)
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 3  # nothing re-ran, nothing re-appended

    def test_partial_checkpoint_runs_only_the_remainder(self, tmp_path, monkeypatch):
        path = str(tmp_path / "sweep.jsonl")
        workloads = small_workloads(3)
        full = evaluate_workloads(
            workloads, seed=5, retry=FAST_RETRY, checkpoint_path=path
        )
        # Keep only the first two completed lines, as if the run died.
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:2])

        import repro.analysis.harness as harness

        real_evaluate_one = harness._evaluate_one
        evaluated = []

        def counting_evaluate_one(payload):
            evaluated.append(payload.index)
            return real_evaluate_one(payload)

        monkeypatch.setattr(harness, "_evaluate_one", counting_evaluate_one)
        resumed = evaluate_workloads(
            workloads, seed=5, retry=FAST_RETRY, checkpoint_path=path
        )
        assert evaluated == [2]  # only the payload whose line was lost
        assert repr(resumed) == repr(full)

    def test_changed_seed_invalidates_the_fingerprint(self, tmp_path, monkeypatch):
        path = str(tmp_path / "sweep.jsonl")
        workloads = small_workloads(2)
        evaluate_workloads(
            workloads, seed=5, retry=FAST_RETRY, checkpoint_path=path
        )

        import repro.analysis.harness as harness

        real_evaluate_one = harness._evaluate_one
        evaluated = []

        def counting_evaluate_one(payload):
            evaluated.append(payload.index)
            return real_evaluate_one(payload)

        monkeypatch.setattr(harness, "_evaluate_one", counting_evaluate_one)
        evaluate_workloads(
            workloads, seed=6, retry=FAST_RETRY, checkpoint_path=path
        )
        assert evaluated == [0, 1]  # different seed: nothing is skipped

    def test_degraded_records_survive_the_round_trip(self, tmp_path):
        from repro.analysis.truthcache import DEFAULT_TRUTH_CACHE

        DEFAULT_TRUTH_CACHE.clear()
        path = str(tmp_path / "sweep.jsonl")
        workloads = small_workloads(1)
        first = evaluate_workloads(
            workloads,
            seed=5,
            retry=FAST_RETRY,
            timeout_s=1e-9,
            checkpoint_path=path,
        )
        assert all(r.degraded for r in first[0])
        DEFAULT_TRUTH_CACHE.clear()
        resumed = evaluate_workloads(
            workloads,
            seed=5,
            retry=FAST_RETRY,
            timeout_s=1e-9,
            checkpoint_path=path,
        )
        assert repr(resumed) == repr(first)
        record = resumed[0][0]
        assert record.actual is None
        assert record.failure is not None
        assert record.failure.kind == "deadline"
        assert record.failure.attempts == FAST_RETRY.max_attempts
