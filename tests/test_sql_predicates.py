"""Predicate model tests: operators, classification, canonical forms."""

import pytest

from repro.sql.predicates import (
    ColumnRef,
    ComparisonPredicate,
    Literal,
    Op,
    PredicateKind,
    column_equality,
    join_predicate,
    local_predicate,
)


class TestOp:
    @pytest.mark.parametrize(
        "op,flipped",
        [
            (Op.EQ, Op.EQ),
            (Op.NE, Op.NE),
            (Op.LT, Op.GT),
            (Op.LE, Op.GE),
            (Op.GT, Op.LT),
            (Op.GE, Op.LE),
        ],
    )
    def test_flip(self, op, flipped):
        assert op.flipped is flipped
        assert op.flipped.flipped is op

    def test_classification_flags(self):
        assert Op.EQ.is_equality
        assert not Op.LT.is_equality
        assert Op.LT.is_range and Op.GE.is_range
        assert not Op.EQ.is_range and not Op.NE.is_range
        assert Op.GT.is_lower_bound and Op.GE.is_lower_bound
        assert Op.LT.is_upper_bound and Op.LE.is_upper_bound
        assert not Op.LT.is_lower_bound

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (Op.EQ, 1, 1, True),
            (Op.EQ, 1, 2, False),
            (Op.NE, 1, 2, True),
            (Op.LT, 1, 2, True),
            (Op.LT, 2, 2, False),
            (Op.LE, 2, 2, True),
            (Op.GT, 3, 2, True),
            (Op.GE, 2, 2, True),
        ],
    )
    def test_evaluate(self, op, a, b, expected):
        assert op.evaluate(a, b) is expected


class TestColumnRef:
    def test_equality_and_hash(self):
        assert ColumnRef("R", "x") == ColumnRef("R", "x")
        assert hash(ColumnRef("R", "x")) == hash(ColumnRef("R", "x"))
        assert ColumnRef("R", "x") != ColumnRef("S", "x")

    def test_ordering_is_lexicographic(self):
        assert ColumnRef("A", "z") < ColumnRef("B", "a")
        assert ColumnRef("A", "a") < ColumnRef("A", "b")

    def test_str(self):
        assert str(ColumnRef("R1", "x")) == "R1.x"


class TestClassification:
    def test_join_predicate_kind(self):
        pred = join_predicate("R", "x", "S", "y")
        assert pred.kind is PredicateKind.JOIN
        assert pred.is_join and not pred.is_local
        assert pred.is_equijoin

    def test_nonequality_join_not_equijoin(self):
        pred = join_predicate("R", "x", "S", "y", Op.LT)
        assert pred.is_join
        assert not pred.is_equijoin

    def test_column_local_kind(self):
        pred = column_equality("R", "x", "y")
        assert pred.kind is PredicateKind.COLUMN_LOCAL
        assert pred.is_local

    def test_constant_local_kind(self):
        pred = local_predicate("R", "x", Op.LT, 100)
        assert pred.kind is PredicateKind.CONSTANT_LOCAL
        assert pred.is_local

    def test_tables_property(self):
        assert join_predicate("R", "x", "S", "y").tables == frozenset({"R", "S"})
        assert local_predicate("R", "x", Op.EQ, 1).tables == frozenset({"R"})

    def test_columns_property(self):
        join = join_predicate("R", "x", "S", "y")
        assert set(join.columns) == {ColumnRef("R", "x"), ColumnRef("S", "y")}
        local = local_predicate("R", "x", Op.EQ, 1)
        assert local.columns == (ColumnRef("R", "x"),)

    def test_constant_accessor(self):
        assert local_predicate("R", "x", Op.LT, 100).constant == 100
        with pytest.raises(ValueError):
            _ = join_predicate("R", "x", "S", "y").constant

    def test_references(self):
        pred = join_predicate("R", "x", "S", "y")
        assert pred.references("R") and pred.references("S")
        assert not pred.references("T")


class TestCanonical:
    def test_join_predicate_operand_order_normalized(self):
        a = ComparisonPredicate(ColumnRef("S", "y"), Op.EQ, ColumnRef("R", "x"))
        b = ComparisonPredicate(ColumnRef("R", "x"), Op.EQ, ColumnRef("S", "y"))
        assert a.canonical() == b.canonical()

    def test_canonical_flips_operator(self):
        pred = ComparisonPredicate(ColumnRef("S", "y"), Op.LT, ColumnRef("R", "x"))
        canonical = pred.canonical()
        assert canonical.left == ColumnRef("R", "x")
        assert canonical.op is Op.GT

    def test_constant_predicate_canonical_is_identity(self):
        pred = local_predicate("R", "x", Op.LT, 10)
        assert pred.canonical() is pred

    def test_already_canonical_unchanged(self):
        pred = ComparisonPredicate(ColumnRef("A", "x"), Op.EQ, ColumnRef("B", "y"))
        assert pred.canonical() is pred

    def test_same_table_columns_ordered(self):
        a = ComparisonPredicate(ColumnRef("R", "z"), Op.EQ, ColumnRef("R", "a"))
        assert a.canonical().left == ColumnRef("R", "a")


class TestConstructors:
    def test_join_predicate_rejects_same_table(self):
        with pytest.raises(ValueError):
            join_predicate("R", "x", "R", "y")

    def test_column_equality_rejects_same_column(self):
        with pytest.raises(ValueError):
            column_equality("R", "x", "x")

    def test_join_predicate_returns_canonical(self):
        pred = join_predicate("Z", "x", "A", "y")
        assert pred.left.table == "A"

    def test_str_rendering(self):
        assert str(join_predicate("R", "x", "S", "y")) == "R.x = S.y"
        assert str(local_predicate("R", "x", Op.LT, 100)) == "R.x < 100"
        assert str(local_predicate("R", "s", Op.EQ, "abc")) == "R.s = 'abc'"

    def test_literal_str(self):
        assert str(Literal(5)) == "5"
        assert str(Literal("a")) == "'a'"
