"""Ground-truth cache: keying, invalidation, LRU behavior, integration."""

import random

import pytest

from repro.analysis import (
    TruthCache,
    canonical_query_text,
    true_join_size,
)
from repro.sql import parse_query
from repro.workloads import build_database, chain_workload


@pytest.fixture()
def chain():
    workload = chain_workload(3, random.Random(0))
    database = build_database(workload.specs, seed=0)
    return workload.query, database


class TestCanonicalQueryText:
    def test_invariant_under_from_order(self):
        a = parse_query("SELECT COUNT(*) FROM R1, R2 WHERE R1.x = R2.x")
        b = parse_query("SELECT COUNT(*) FROM R2, R1 WHERE R1.x = R2.x")
        assert canonical_query_text(a) == canonical_query_text(b)

    def test_invariant_under_predicate_order(self):
        a = parse_query(
            "SELECT COUNT(*) FROM A, B, C WHERE A.x = B.x AND B.x = C.x AND A.x < 5"
        )
        b = parse_query(
            "SELECT COUNT(*) FROM A, B, C WHERE A.x < 5 AND B.x = C.x AND A.x = B.x"
        )
        assert canonical_query_text(a) == canonical_query_text(b)

    def test_invariant_under_operand_orientation(self):
        a = parse_query("SELECT COUNT(*) FROM R1, R2 WHERE R1.x = R2.x")
        b = parse_query("SELECT COUNT(*) FROM R1, R2 WHERE R2.x = R1.x")
        assert canonical_query_text(a) == canonical_query_text(b)

    def test_projection_excluded(self):
        a = parse_query("SELECT COUNT(*) FROM R1, R2 WHERE R1.x = R2.x")
        b = parse_query("SELECT R1.x FROM R1, R2 WHERE R1.x = R2.x")
        assert canonical_query_text(a) == canonical_query_text(b)

    def test_aliases_distinguished_from_base_tables(self):
        a = parse_query("SELECT COUNT(*) FROM Orders o, Items i WHERE o.x = i.x")
        b = parse_query("SELECT COUNT(*) FROM Orders, Items WHERE Orders.x = Items.x")
        assert canonical_query_text(a) != canonical_query_text(b)

    def test_different_constants_distinguished(self):
        a = parse_query("SELECT COUNT(*) FROM R1 WHERE R1.x < 5")
        b = parse_query("SELECT COUNT(*) FROM R1 WHERE R1.x < 6")
        assert canonical_query_text(a) != canonical_query_text(b)


class TestTruthCache:
    def test_miss_then_hit(self, chain):
        query, database = chain
        cache = TruthCache()
        assert cache.get(database, query) is None
        cache.put(database, query, 42)
        assert cache.get(database, query) == 42
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.lookups == 2

    def test_count_coerced_to_int(self, chain):
        query, database = chain
        cache = TruthCache()
        cache.put(database, query, 42.0)
        value = cache.get(database, query)
        assert value == 42 and isinstance(value, int)

    def test_fingerprint_invalidation_on_append(self, chain):
        """Appending one row must make the old entry unreachable."""
        query, database = chain
        cache = TruthCache()
        cache.put(database, query, 7)
        table = database.table(database.table_names()[0])
        template = table.rows()[0]
        table.append(template)
        assert cache.get(database, query) is None
        assert cache.stats.misses == 1

    def test_equivalent_queries_share_one_entry(self, chain):
        _, database = chain
        cache = TruthCache()
        a = parse_query("SELECT COUNT(*) FROM T1, T2 WHERE T1.c = T2.c")
        b = parse_query("SELECT COUNT(*) FROM T2, T1 WHERE T2.c = T1.c")
        cache.put(database, a, 9)
        assert cache.get(database, b) == 9
        assert len(cache) == 1

    def test_lru_eviction(self, chain):
        _, database = chain
        cache = TruthCache(max_entries=2)
        q = [
            parse_query(f"SELECT COUNT(*) FROM R1 WHERE R1.x < {i}") for i in range(3)
        ]
        cache.put(database, q[0], 0)
        cache.put(database, q[1], 1)
        cache.get(database, q[0])  # refresh q0: q1 becomes LRU
        cache.put(database, q[2], 2)  # evicts q1
        assert cache.get(database, q[0]) == 0
        assert cache.get(database, q[2]) == 2
        assert cache.get(database, q[1]) is None
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_clear_resets_entries_and_stats(self, chain):
        query, database = chain
        cache = TruthCache()
        cache.put(database, query, 1)
        cache.get(database, query)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 0 and cache.stats.misses == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TruthCache(max_entries=0)


class TestCorruptionDetection:
    def test_tampered_entry_reads_as_a_miss(self, chain):
        query, database = chain
        cache = TruthCache()
        cache.put(database, query, 42)
        assert cache.corrupt(database, query)
        assert cache.get(database, query) is None
        assert cache.stats.corruptions == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_tampered_entry_is_evicted_on_detection(self, chain):
        query, database = chain
        cache = TruthCache()
        cache.put(database, query, 42)
        cache.corrupt(database, query)
        cache.get(database, query)
        assert len(cache) == 0  # the poisoned entry is gone
        cache.put(database, query, 42)  # a clean re-fill works again
        assert cache.get(database, query) == 42

    def test_corrupt_on_absent_entry_reports_false(self, chain):
        query, database = chain
        cache = TruthCache()
        assert not cache.corrupt(database, query)
        assert cache.stats.corruptions == 0

    def test_corruption_does_not_count_an_eviction(self, chain):
        query, database = chain
        cache = TruthCache()
        cache.put(database, query, 42)
        cache.corrupt(database, query)
        cache.get(database, query)
        assert cache.stats.evictions == 0  # capacity evictions only

    def test_true_join_size_recomputes_through_corruption(self, chain):
        query, database = chain
        cache = TruthCache()
        honest = true_join_size(query, database, cache=cache)
        cache.corrupt(database, query)
        recomputed = true_join_size(query, database, cache=cache)
        assert recomputed == honest
        assert cache.stats.corruptions == 1
        # The recomputation re-fills the cache with a verifiable entry.
        assert cache.get(database, query) == honest

    def test_stats_dict_round_trip(self, chain):
        query, database = chain
        cache = TruthCache()
        cache.put(database, query, 42)
        cache.corrupt(database, query)
        cache.get(database, query)
        cache.get(database, query)  # second lookup: a clean miss
        stats = cache.stats.to_dict()
        assert stats == {
            "hits": 0,
            "misses": 2,
            "evictions": 0,
            "corruptions": 1,
            "lookups": 2,
        }

    def test_clear_resets_corruption_count(self, chain):
        query, database = chain
        cache = TruthCache()
        cache.put(database, query, 42)
        cache.corrupt(database, query)
        cache.get(database, query)
        cache.clear()
        assert cache.stats.corruptions == 0


class TestTrueJoinSizeIntegration:
    def test_cache_round_trip_matches_execution(self, chain):
        query, database = chain
        cache = TruthCache()
        first = true_join_size(query, database, cache=cache)
        second = true_join_size(query, database, cache=cache)
        assert first == second
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        uncached = true_join_size(query, database, cache=None)
        assert uncached == first

    def test_engines_fill_cache_identically(self, chain):
        query, database = chain
        row_cache = TruthCache()
        columnar_cache = TruthCache()
        row = true_join_size(query, database, engine="row", cache=row_cache)
        columnar = true_join_size(
            query, database, engine="columnar", cache=columnar_cache
        )
        assert row == columnar

    def test_append_forces_reexecution_with_new_count(self, chain):
        query, database = chain
        cache = TruthCache()
        before = true_join_size(query, database, cache=cache)
        # Duplicate every T1 row: every join result through T1 doubles.
        table = database.table("T1")
        for row in list(table.rows()):
            table.append(row)
        after = true_join_size(query, database, cache=cache)
        assert after == 2 * before
        assert cache.stats.misses == 2
        assert len(cache) == 2


class TestThreadSafety:
    def test_two_thread_hammer_keeps_stats_and_lru_consistent(self, chain):
        """Concurrent get/put from two threads must not tear the LRU map
        or lose counter increments: hits + misses == lookups exactly, and
        the entry count never exceeds the capacity."""
        import threading

        query, database = chain
        cache = TruthCache(max_entries=8)
        rounds = 300
        errors = []

        def hammer(worker_seed):
            try:
                for i in range(rounds):
                    if (worker_seed + i) % 3 == 0:
                        cache.put(database, query, 42)
                    else:
                        value = cache.get(database, query)
                        assert value in (None, 42)
            except Exception as exc:  # pragma: no cover - only on a race
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(seed,)) for seed in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert cache.stats.hits + cache.stats.misses == cache.stats.lookups
        gets = sum(1 for s in (0, 1) for i in range(rounds) if (s + i) % 3 != 0)
        assert cache.stats.lookups == gets
        assert len(cache) <= 8

    def test_concurrent_puts_respect_capacity(self, chain):
        import threading

        query, database = chain
        cache = TruthCache(max_entries=4)

        def fill():
            for count in range(100):
                cache.put(database, query, count)

        threads = [threading.Thread(target=fill) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 4
        assert cache.get(database, query) is not None
