"""Layer-1 lint rules: minimal positive/negative snippets per rule.

Each rule gets at least one snippet that must trigger exactly its code and
one nearby-but-legal snippet that must stay silent, pinning the rule
boundaries (the same boundaries ``docs/LINT.md`` documents).
"""

import pytest

from repro.errors import LintError
from repro.lint import LintRule, lint_paths, lint_source
from repro.lint.engine import all_rules, iter_python_files, register


def codes(source, path="mod.py", **kwargs):
    """Lint one snippet and return the sorted list of finding codes."""
    return sorted(d.code for d in lint_source(source, path, **kwargs))


class TestSyntaxError:
    def test_unparsable_file_yields_els100(self):
        diagnostics = lint_source("def broken(:\n", "bad.py")
        assert [d.code for d in diagnostics] == ["ELS100"]
        assert diagnostics[0].line == 1

    def test_parsable_file_has_no_els100(self):
        assert "ELS100" not in codes("x = 1\n")


class TestUrnArithmetic:
    def test_survival_power_pattern_flagged(self):
        snippet = "def _f(n, k):\n    return n * (1 - (1 - 1 / n) ** k)\n"
        assert codes(snippet) == ["ELS101"]

    def test_log1p_call_flagged(self):
        snippet = "import math\n\ndef _f(n, k):\n    return math.log1p(-1.0 / n) * k\n"
        assert codes(snippet) == ["ELS101"]

    def test_allowed_inside_urn_module(self):
        snippet = "def _f(n, k):\n    return n * (1 - (1 - 1 / n) ** k)\n"
        assert codes(snippet, path="src/repro/core/urn.py") == []

    def test_unrelated_power_is_legal(self):
        assert codes("def _f(x):\n    return (x - 1) ** 2\n") == []


class TestUnclampedSelectivity:
    def test_bare_arithmetic_return_flagged(self):
        snippet = "def _join_selectivity(d1, d2):\n    return 1.0 / (d1 * d2)\n"
        assert codes(snippet) == ["ELS102"]

    def test_clamped_return_is_legal(self):
        snippet = (
            "def _join_selectivity(d1, d2):\n"
            "    return min(1.0, 1.0 / (d1 * d2))\n"
        )
        assert codes(snippet) == []

    def test_validating_raise_is_legal(self):
        snippet = (
            "def _join_selectivity(d1, d2):\n"
            "    if d1 <= 0:\n"
            "        raise ValueError(d1)\n"
            "    return 1.0 / d1\n"
        )
        assert codes(snippet) == []

    def test_non_selectivity_function_ignored(self):
        assert codes("def _ratio(a, b):\n    return a / b\n") == []

    def test_clamp_in_nested_function_does_not_guard(self):
        snippet = (
            "def _join_selectivity(d1):\n"
            "    def helper(x):\n"
            "        return min(x, 1.0)\n"
            "    return 1.0 / d1\n"
        )
        assert codes(snippet) == ["ELS102"]


class TestFloatEquality:
    def test_two_estimate_names_flagged(self):
        assert codes("ok = rows == other_rows\n") == ["ELS103"]

    def test_estimate_vs_float_literal_flagged(self):
        assert codes("bad = selectivity != 0.5\n") == ["ELS103"]

    def test_integer_sentinel_is_legal(self):
        assert codes("empty = rows == 0\n") == []

    def test_non_estimate_names_are_legal(self):
        assert codes("same = count == total\n") == []

    def test_test_files_are_exempt(self):
        assert codes("ok = rows == other_rows\n", path="test_foo.py") == []


class TestMutableDefault:
    def test_list_default_flagged(self):
        assert codes("def _f(xs=[]):\n    return xs\n") == ["ELS104"]

    def test_constructor_call_default_flagged(self):
        assert codes("def _f(xs=dict()):\n    return xs\n") == ["ELS104"]

    def test_keyword_only_default_flagged(self):
        assert codes("def _f(*, xs=set()):\n    return xs\n") == ["ELS104"]

    def test_lambda_default_flagged(self):
        assert codes("g = lambda xs=[]: xs\n") == ["ELS104"]

    def test_none_and_tuple_defaults_are_legal(self):
        assert codes("def _f(xs=None, ys=()):\n    return xs, ys\n") == []


class TestMissingAll:
    def test_public_def_without_all_flagged(self):
        assert codes("def public():\n    return 1\n") == ["ELS105"]

    def test_incomplete_all_flagged(self):
        snippet = (
            "__all__ = ['a']\n\n"
            "def a():\n    return 1\n\n"
            "def b():\n    return 2\n"
        )
        diagnostics = lint_source(snippet, "mod.py")
        assert [d.code for d in diagnostics] == ["ELS105"]
        assert "'b'" in diagnostics[0].message

    def test_complete_all_is_legal(self):
        snippet = "__all__ = ['a']\n\ndef a():\n    return 1\n"
        assert codes(snippet) == []

    def test_dynamic_all_skips_completeness(self):
        snippet = (
            "__all__ = sorted(globals())\n\n"
            "def a():\n    return 1\n"
        )
        assert codes(snippet) == []

    def test_script_with_main_guard_is_exempt(self):
        snippet = (
            "def run():\n    return 1\n\n"
            "if __name__ == '__main__':\n    run()\n"
        )
        assert codes(snippet) == []

    def test_private_only_module_needs_no_all(self):
        assert codes("def _helper():\n    return 1\n") == []

    def test_test_files_are_exempt(self):
        assert codes("def test_x():\n    pass\n", path="test_mod.py") == []


class TestBareExcept:
    def test_bare_except_flagged(self):
        snippet = "try:\n    x = 1\nexcept:\n    pass\n"
        assert codes(snippet) == ["ELS106"]

    def test_typed_except_is_legal(self):
        snippet = "try:\n    x = 1\nexcept ValueError:\n    pass\n"
        assert codes(snippet) == []


class TestEngine:
    def test_select_keeps_only_matching_prefix(self):
        snippet = "def f(xs=[]):\n    return xs\n\ndef g():\n    return 1\n"
        assert codes(snippet) == ["ELS104", "ELS105"]
        assert codes(snippet, select=["ELS104"]) == ["ELS104"]

    def test_ignore_drops_matching_prefix(self):
        snippet = "def f(xs=[]):\n    return xs\n\ndef g():\n    return 1\n"
        assert codes(snippet, ignore=["ELS105"]) == ["ELS104"]

    def test_every_rule_has_unique_code_and_metadata(self):
        rules = all_rules()
        seen = [rule.code for rule in rules]
        assert len(seen) == len(set(seen))
        for rule in rules:
            assert rule.code.startswith("ELS1")
            assert rule.description, rule.code
            assert rule.hint, rule.code

    def test_duplicate_registration_raises(self):
        class Clone(LintRule):
            """A rule stealing an existing code, which must be rejected."""

            code = "ELS104"

        with pytest.raises(LintError, match="duplicate"):
            register(Clone)

    def test_missing_path_raises_lint_error(self):
        with pytest.raises(LintError, match="no such file"):
            list(iter_python_files(["/nonexistent/nowhere.py"]))

    def test_non_python_file_raises_lint_error(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("hello")
        with pytest.raises(LintError, match="not a Python source file"):
            list(iter_python_files([str(path)]))

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "bad.py").write_text("def _f(xs=[]):\n    return xs\n")
        (tmp_path / "pkg" / "good.py").write_text("X = 1\n")
        diagnostics = lint_paths([str(tmp_path)])
        assert [d.code for d in diagnostics] == ["ELS104"]
        assert diagnostics[0].file.endswith("bad.py")
