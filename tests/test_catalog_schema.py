"""Schema tests: column types, widths, lookup, validation."""

import pytest

from repro.catalog import ColumnDef, ColumnType, TableSchema
from repro.errors import CatalogError


class TestColumnType:
    def test_int_validation(self):
        assert ColumnType.INT.validate(5)
        assert not ColumnType.INT.validate(5.0)
        assert not ColumnType.INT.validate("5")
        assert not ColumnType.INT.validate(True)  # bools are not SQL ints

    def test_float_accepts_int(self):
        assert ColumnType.FLOAT.validate(5)
        assert ColumnType.FLOAT.validate(5.5)
        assert not ColumnType.FLOAT.validate("x")
        assert not ColumnType.FLOAT.validate(False)

    def test_str_validation(self):
        assert ColumnType.STR.validate("abc")
        assert not ColumnType.STR.validate(1)

    def test_python_type(self):
        assert ColumnType.INT.python_type is int
        assert ColumnType.STR.python_type is str


class TestColumnDef:
    def test_default_widths(self):
        assert ColumnDef("x").width_bytes == 4
        assert ColumnDef("x", ColumnType.FLOAT).width_bytes == 4
        assert ColumnDef("s", ColumnType.STR).width_bytes == 16

    def test_explicit_width(self):
        assert ColumnDef("x", ColumnType.INT, width_bytes=8).width_bytes == 8


class TestTableSchema:
    def test_of_builds_int_columns(self):
        schema = TableSchema.of("R", "a", "b")
        assert schema.column_names == ("a", "b")
        assert all(c.type is ColumnType.INT for c in schema.columns)

    def test_of_accepts_columndefs(self):
        schema = TableSchema.of("R", "a", ColumnDef("s", ColumnType.STR))
        assert schema.column("s").type is ColumnType.STR

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema.of("R", "a", "a")

    def test_empty_schema_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("R", ())

    def test_index_of(self):
        schema = TableSchema.of("R", "a", "b", "c")
        assert schema.index_of("b") == 1
        with pytest.raises(CatalogError):
            schema.index_of("zzz")

    def test_has_column(self):
        schema = TableSchema.of("R", "a")
        assert schema.has_column("a")
        assert not schema.has_column("b")

    def test_row_width(self):
        schema = TableSchema.of("R", "a", ColumnDef("s", ColumnType.STR))
        assert schema.row_width_bytes == 20

    def test_renamed_keeps_layout(self):
        schema = TableSchema.of("R", "a", "b")
        alias = schema.renamed("r2")
        assert alias.name == "r2"
        assert alias.column_names == schema.column_names
