"""Self-dogfooding: the repository's own sources must be lint-clean.

These tests make the layer-1 rules a standing invariant of the codebase —
the same check CI runs via ``repro-els lint src tests``.  A failure here
means either new code violated a rule (fix the code) or a rule grew a
false positive (fix the rule); suppressions are not an option.
"""

import pathlib

import pytest

from repro.lint import lint_paths
from repro.lint.render import render_text

ROOT = pathlib.Path(__file__).parent.parent


@pytest.mark.parametrize("tree", ["src", "tests", "benchmarks", "examples"])
def test_tree_is_lint_clean(tree):
    path = ROOT / tree
    if not path.is_dir():
        pytest.skip(f"no {tree}/ directory")
    diagnostics = lint_paths([str(path)])
    assert diagnostics == [], "\n" + render_text(diagnostics)


@pytest.mark.parametrize("tree", ["src", "tests", "benchmarks", "examples"])
def test_tree_is_dataflow_clean(tree):
    """The ELS3xx quantity pass must also report nothing on the tree."""
    path = ROOT / tree
    if not path.is_dir():
        pytest.skip(f"no {tree}/ directory")
    diagnostics = lint_paths([str(path)], select=["ELS3"], dataflow=True)
    assert diagnostics == [], "\n" + render_text(diagnostics)


@pytest.mark.parametrize("tree", ["src", "tests", "benchmarks", "examples"])
def test_tree_is_effects_clean(tree):
    """The ELS4xx effect pass must also report nothing on the tree."""
    path = ROOT / tree
    if not path.is_dir():
        pytest.skip(f"no {tree}/ directory")
    diagnostics = lint_paths([str(path)], select=["ELS4"], effects=True)
    assert diagnostics == [], "\n" + render_text(diagnostics)


@pytest.mark.parametrize("tree", ["src", "tests", "benchmarks", "examples"])
def test_tree_is_concurrency_clean(tree):
    """The ELS5xx concurrency pass must also report nothing on the tree."""
    path = ROOT / tree
    if not path.is_dir():
        pytest.skip(f"no {tree}/ directory")
    diagnostics = lint_paths([str(path)], select=["ELS5"], concurrency=True)
    assert diagnostics == [], "\n" + render_text(diagnostics)


@pytest.mark.parametrize("tree", ["src", "tests", "benchmarks", "examples"])
def test_tree_is_perf_clean(tree):
    """The ELS6xx hot-path performance pass must also report nothing."""
    path = ROOT / tree
    if not path.is_dir():
        pytest.skip(f"no {tree}/ directory")
    diagnostics = lint_paths([str(path)], select=["ELS6"], perf=True)
    assert diagnostics == [], "\n" + render_text(diagnostics)


@pytest.mark.parametrize("tree", ["src", "tests", "benchmarks", "examples"])
def test_tree_is_contracts_clean(tree):
    """The ELS7xx contract-and-architecture pass must also report nothing."""
    path = ROOT / tree
    if not path.is_dir():
        pytest.skip(f"no {tree}/ directory")
    diagnostics = lint_paths([str(path)], select=["ELS7"], contracts=True)
    assert diagnostics == [], "\n" + render_text(diagnostics)


def test_full_stack_is_clean_over_src():
    """The acceptance gate: all six passes together over ``src/``."""
    diagnostics = lint_paths(
        [str(ROOT / "src")],
        dataflow=True,
        effects=True,
        concurrency=True,
        perf=True,
        contracts=True,
    )
    assert diagnostics == [], "\n" + render_text(diagnostics)
