"""Tests for the incremental content-addressed lint cache.

Covers the name-interface extraction (including the ``lock::`` pseudo
names that keep ELS502's global lock-order graph sound), dependency
component grouping, the rule-set fingerprint, file/component entry
round-trips, corruption-as-cold-miss, and the engine-level invariants:
warm output byte-identical to cold over every tree, one-file edits
invalidating only that file, rule-set changes invalidating everything,
and one parse per file per cold run.
"""

import ast
import json
import textwrap

import pytest

from repro.lint import cache as cache_module
from repro.lint.cache import (
    FileEntry,
    LintCache,
    content_digest,
    dependency_components,
    module_interface,
    ruleset_fingerprint,
)
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import lint_paths


def _interface(source):
    return module_interface(ast.parse(textwrap.dedent(source)))


class TestModuleInterface:
    def test_definitions_include_methods_and_classes(self):
        defined, _ = _interface(
            """
            class Estimator:
                def combine(self):
                    pass

            def helper():
                pass
            """
        )
        assert "Estimator" in defined
        assert "combine" in defined
        assert "helper" in defined

    def test_references_include_calls_imports_and_bases(self):
        _, referenced = _interface(
            """
            from repro.core import closure

            class Derived(Base):
                pass

            def f(x):
                return x.compute() + closure()
            """
        )
        assert "closure" in referenced
        assert "compute" in referenced
        assert "Base" in referenced

    def test_lock_names_are_pseudo_defined_and_referenced(self):
        defined, referenced = _interface(
            """
            def f(self):
                with self._cache_lock:
                    pass
            """
        )
        assert "lock::_cache_lock" in defined
        assert "lock::_cache_lock" in referenced


class TestDependencyComponents:
    def test_call_reference_links_files(self):
        components = dependency_components(
            {
                "a.py": (["helper"], []),
                "b.py": ([], ["helper"]),
                "c.py": (["other"], []),
            }
        )
        assert components == [["a.py", "b.py"], ["c.py"]]

    def test_shared_lock_name_links_files(self):
        a = _interface("def f(self):\n    self._lock.acquire()\n")
        b = _interface("def g(self):\n    self._lock.release()\n")
        components = dependency_components({"a.py": a, "b.py": b})
        assert components == [["a.py", "b.py"]]

    def test_unrelated_files_stay_singletons(self):
        components = dependency_components(
            {
                "a.py": (["alpha"], ["ext_one"]),
                "b.py": (["beta"], ["ext_two"]),
            }
        )
        assert components == [["a.py"], ["b.py"]]


class TestFingerprint:
    def test_stable_within_process(self):
        assert ruleset_fingerprint() == ruleset_fingerprint()

    def test_schema_version_changes_fingerprint(self, monkeypatch):
        before = ruleset_fingerprint()
        monkeypatch.setattr(cache_module, "_SCHEMA_VERSION", "test-bump")
        cache_module._reset_fingerprint_for_tests()
        try:
            after = ruleset_fingerprint()
        finally:
            monkeypatch.undo()
            cache_module._reset_fingerprint_for_tests()
        assert after != before
        assert ruleset_fingerprint() == before

    def test_contract_data_files_change_fingerprint(
        self, tmp_path, monkeypatch
    ):
        """Editing layers.toml or api-baseline.json must invalidate caches."""
        import types

        package = tmp_path / "lintpkg"
        package.mkdir()
        (package / "rules.py").write_text("RULE = 1\n")
        (package / "layers.toml").write_text('[[tier]]\nname = "a"\n')
        (package / "api-baseline.json").write_text("{}\n")
        fake = types.SimpleNamespace(
            resolve=lambda: types.SimpleNamespace(parent=package)
        )
        monkeypatch.setattr(cache_module, "Path", lambda _file: fake)
        cache_module._reset_fingerprint_for_tests()
        try:
            before = ruleset_fingerprint()
            (package / "layers.toml").write_text('[[tier]]\nname = "b"\n')
            cache_module._reset_fingerprint_for_tests()
            after_manifest = ruleset_fingerprint()
            (package / "api-baseline.json").write_text('{"m": {}}\n')
            cache_module._reset_fingerprint_for_tests()
            after_baseline = ruleset_fingerprint()
        finally:
            monkeypatch.undo()
            cache_module._reset_fingerprint_for_tests()
        assert after_manifest != before
        assert after_baseline != after_manifest


def _diagnostic(path, line=3, code="ELS104"):
    return Diagnostic(
        file=path,
        line=line,
        col=4,
        code=code,
        severity=Severity.ERROR,
        message="mutable default argument in 'f'",
        hint="default to None",
    )


def _entry(path="pkg/mod.py"):
    return FileEntry(
        path=path,
        digest=content_digest(b"def f(x=[]):\n    return x\n"),
        parsed_ok=True,
        findings=(_diagnostic(path),),
        noqa=((7, ("ELS104",)), (9, None)),
        defined=("f",),
        referenced=("list",),
    )


class TestEntryRoundTrips:
    def test_file_entry_round_trip(self, tmp_path):
        cache = LintCache(str(tmp_path / "cache"))
        entry = _entry()
        cache.store_file(entry)
        loaded = cache.load_file(entry.path, entry.digest)
        assert loaded == entry
        assert cache.stats.file_hits == 1

    def test_different_digest_misses(self, tmp_path):
        cache = LintCache(str(tmp_path / "cache"))
        entry = _entry()
        cache.store_file(entry)
        assert cache.load_file(entry.path, "0" * 32) is None
        assert cache.stats.file_misses == 1

    def test_different_path_misses(self, tmp_path):
        cache = LintCache(str(tmp_path / "cache"))
        entry = _entry()
        cache.store_file(entry)
        assert cache.load_file("pkg/renamed.py", entry.digest) is None

    def test_component_round_trip(self, tmp_path):
        cache = LintCache(str(tmp_path / "cache"))
        members = [("a.py", "d" * 32), ("b.py", "e" * 32)]
        passes = ["dataflow", "perf"]
        finding = _diagnostic("a.py", code="ELS603")
        summaries = {
            "a.py": {"f": {"hot": {"hot": True, "origin": "execute"}}}
        }
        cache.store_component(members, passes, [finding], summaries)
        assert cache.load_component(members, passes) == [finding]
        assert cache.load_component_summaries(members, passes) == summaries
        assert cache.load_component(members, ["dataflow"]) is None
        assert cache.load_component(list(reversed(members)), passes) == [
            finding
        ]

    def test_corrupted_entry_is_a_cold_miss(self, tmp_path):
        cache = LintCache(str(tmp_path / "cache"))
        entry = _entry()
        cache.store_file(entry)
        entry_file = next((tmp_path / "cache" / "files").glob("*.json"))
        wrapper = json.loads(entry_file.read_text())
        wrapper["payload"]["parsed_ok"] = False
        entry_file.write_text(json.dumps(wrapper))
        assert cache.load_file(entry.path, entry.digest) is None
        assert cache.stats.corruptions == 1
        assert cache.stats.file_misses == 1

    def test_truncated_entry_is_a_cold_miss(self, tmp_path):
        cache = LintCache(str(tmp_path / "cache"))
        entry = _entry()
        cache.store_file(entry)
        entry_file = next((tmp_path / "cache" / "files").glob("*.json"))
        entry_file.write_bytes(entry_file.read_bytes()[:20])
        assert cache.load_file(entry.path, entry.digest) is None
        assert cache.stats.corruptions == 1

    def test_unwritable_root_degrades_to_no_op(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        cache = LintCache(str(blocker))
        cache.store_file(_entry())  # must not raise
        assert cache.load_file(_entry().path, _entry().digest) is None


HOT_HAZARD = textwrap.dedent(
    '''
    """Module under lint."""

    __all__ = ["estimate_key"]


    def estimate_key(parts):
        key = ""
        for part in parts:
            key += part
        return key
    '''
)

CLEAN_CALLER = textwrap.dedent(
    '''
    """Second module, linked to the first by a call."""

    __all__ = ["execute"]

    from hazard import estimate_key


    def execute(parts):
        return estimate_key(parts)
    '''
)


@pytest.fixture
def tree(tmp_path):
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "hazard.py").write_text(HOT_HAZARD)
    (package / "caller.py").write_text(CLEAN_CALLER)
    return package


def _run(tree_path, cache=None, **kwargs):
    kwargs.setdefault("dataflow", True)
    kwargs.setdefault("effects", True)
    kwargs.setdefault("concurrency", True)
    kwargs.setdefault("perf", True)
    return lint_paths([str(tree_path)], cache=cache, **kwargs)


class TestEngineIntegration:
    def test_cold_run_equals_uncached_run(self, tree, tmp_path):
        reference = _run(tree)
        cache = LintCache(str(tmp_path / "cache"))
        cold = _run(tree, cache=cache)
        assert cold == reference
        assert cache.stats.file_misses == 2
        assert cache.stats.file_hits == 0

    def test_warm_run_is_byte_identical_and_all_hits(self, tree, tmp_path):
        root = str(tmp_path / "cache")
        cold = _run(tree, cache=LintCache(root))
        warm_cache = LintCache(root)
        warm = _run(tree, cache=warm_cache)
        assert warm == cold
        assert warm_cache.stats.file_hits == 2
        assert warm_cache.stats.file_misses == 0
        assert warm_cache.stats.component_misses == 0

    def test_warm_run_with_jobs_matches(self, tree, tmp_path):
        root = str(tmp_path / "cache")
        cold = _run(tree, cache=LintCache(root))
        warm = _run(tree, cache=LintCache(root), jobs=2)
        assert warm == cold

    def test_one_file_edit_invalidates_only_that_file(self, tree, tmp_path):
        root = str(tmp_path / "cache")
        _run(tree, cache=LintCache(root))
        (tree / "caller.py").write_text(
            CLEAN_CALLER + "\n\nRETRY_LIMIT = 3\n"
        )
        edited_cache = LintCache(root)
        edited = _run(tree, cache=edited_cache)
        assert edited_cache.stats.file_hits == 1
        assert edited_cache.stats.file_misses == 1
        assert edited == _run(tree)

    def test_edit_changing_findings_updates_output(self, tree, tmp_path):
        root = str(tmp_path / "cache")
        before = _run(tree, cache=LintCache(root))
        assert "ELS603" in [d.code for d in before]
        (tree / "hazard.py").write_text(
            HOT_HAZARD.replace(
                "key += part", "key += part  # els: noqa[ELS603]"
            )
        )
        after = _run(tree, cache=LintCache(root))
        assert "ELS603" not in [d.code for d in after]
        assert after == _run(tree)

    def test_ruleset_change_invalidates_everything(
        self, tree, tmp_path, monkeypatch
    ):
        root = str(tmp_path / "cache")
        _run(tree, cache=LintCache(root))
        monkeypatch.setattr(cache_module, "_SCHEMA_VERSION", "test-bump")
        cache_module._reset_fingerprint_for_tests()
        try:
            bumped_cache = LintCache(root)
            bumped = _run(tree, cache=bumped_cache)
        finally:
            monkeypatch.undo()
            cache_module._reset_fingerprint_for_tests()
        assert bumped_cache.stats.file_hits == 0
        assert bumped_cache.stats.file_misses == 2
        assert bumped == _run(tree)

    def test_syntax_error_file_is_cached(self, tree, tmp_path):
        (tree / "broken.py").write_text("def broken(:\n")
        root = str(tmp_path / "cache")
        cold = _run(tree, cache=LintCache(root))
        warm = _run(tree, cache=LintCache(root))
        assert warm == cold
        assert "ELS100" in [d.code for d in warm]

    def test_one_parse_per_file_serial(self, tree, monkeypatch):
        real_parse = ast.parse
        counts = {}

        def counting_parse(source, *args, **kwargs):
            filename = kwargs.get("filename") or (
                args[0] if args else "<unknown>"
            )
            counts[filename] = counts.get(filename, 0) + 1
            return real_parse(source, *args, **kwargs)

        monkeypatch.setattr(ast, "parse", counting_parse)
        _run(tree, cache=None)
        per_file = {
            name: count
            for name, count in counts.items()
            if name.endswith(".py")
        }
        assert len(per_file) == 2
        assert all(count == 1 for count in per_file.values()), per_file


class TestRepoTrees:
    def test_warm_output_identical_over_all_trees(self, tmp_path):
        """Byte-identity over src/tests/benchmarks/examples (layer 1)."""
        trees = ["src", "tests", "benchmarks", "examples"]
        reference = lint_paths(trees)
        root = str(tmp_path / "cache")
        cold = lint_paths(trees, cache=LintCache(root))
        warm_cache = LintCache(root)
        warm = lint_paths(trees, cache=warm_cache)
        assert cold == reference
        assert warm == reference
        assert warm_cache.stats.file_misses == 0
        assert warm_cache.stats.corruptions == 0
