"""Plan tree tests: structure, leaf order, explain output."""

from repro.optimizer import JoinMethod, JoinPlan, ScanPlan, explain, joins_of, leaf_order
from repro.sql import Op, join_predicate, local_predicate


def scan(name, rows=100.0):
    return ScanPlan(
        relation=name,
        base_table=name,
        local_predicates=(),
        estimated_rows=rows,
        estimated_cost=1.0,
        row_width=8,
    )


def join(left, right, predicates=(), method=JoinMethod.SORT_MERGE, rows=50.0):
    return JoinPlan(
        left=left,
        right=right,
        method=method,
        predicates=tuple(predicates),
        estimated_rows=rows,
        estimated_cost=left.estimated_cost + right.estimated_cost + 1.0,
        row_width=left.row_width + right.row_width,
    )


class TestStructure:
    def test_scan_tables(self):
        assert scan("R").tables == frozenset({"R"})
        assert scan("R").is_scan

    def test_join_tables_union(self):
        plan = join(join(scan("A"), scan("B")), scan("C"))
        assert plan.tables == frozenset({"A", "B", "C"})
        assert not plan.is_scan

    def test_cartesian_flag(self):
        assert join(scan("A"), scan("B")).is_cartesian
        pred = join_predicate("A", "x", "B", "y")
        assert not join(scan("A"), scan("B"), [pred]).is_cartesian

    def test_row_width_accumulates(self):
        plan = join(join(scan("A"), scan("B")), scan("C"))
        assert plan.row_width == 24


class TestLeafOrder:
    def test_single_scan(self):
        assert leaf_order(scan("R")) == ("R",)

    def test_left_deep_order(self):
        plan = join(join(scan("B"), scan("G")), scan("M"))
        assert leaf_order(plan) == ("B", "G", "M")

    def test_four_way(self):
        plan = join(join(join(scan("B"), scan("G")), scan("M")), scan("S"))
        assert leaf_order(plan) == ("B", "G", "M", "S")


class TestJoinsOf:
    def test_scan_has_no_joins(self):
        assert joins_of(scan("R")) == ()

    def test_bottom_up_order(self):
        inner = join(scan("A"), scan("B"))
        outer = join(inner, scan("C"))
        assert joins_of(outer) == (inner, outer)


class TestExplain:
    def test_scan_with_predicates(self):
        plan = ScanPlan(
            relation="S",
            base_table="S",
            local_predicates=(local_predicate("S", "s", Op.LT, 100),),
            estimated_rows=99.0,
            estimated_cost=2.0,
            row_width=4,
        )
        text = explain(plan)
        assert "Scan S" in text and "S.s < 100" in text

    def test_join_tree_indented(self):
        pred = join_predicate("A", "x", "B", "y")
        plan = join(scan("A"), scan("B"), [pred], JoinMethod.NESTED_LOOPS)
        text = explain(plan)
        lines = text.splitlines()
        assert lines[0].startswith("NL-Join")
        assert lines[1].startswith("  Scan A")
        assert lines[2].startswith("  Scan B")

    def test_cartesian_marked(self):
        assert "cartesian" in explain(join(scan("A"), scan("B")))
