"""Tests for the ELS6xx hot-path performance layer.

Covers the ``hot=`` directive grammar (ELS600 positive/negative), the
hotness fixpoint (heuristic roots, pins, interprocedural propagation,
``hot=no`` blocking), every diagnostic code ELS601-ELS607 with positive
*and* negative snippets, the dogfooded pre-fix shapes (per-pair key
extraction, per-resume fingerprinting), and the engine integration
(``perf=`` flag, ``# els: noqa[ELS6xx]`` + ELS199).
"""

import ast
import textwrap

from repro.lint.dataflow.annotations import parse_directives
from repro.lint.dataflow.summaries import collect_program
from repro.lint.engine import known_codes, lint_source
from repro.lint.perf import (
    HOT_ENTRY_NAMES,
    PERF_CODES,
    analyze_modules,
    analyze_source,
    compute_hotness,
)


def codes(source):
    return [d.code for d in analyze_source(textwrap.dedent(source))]


def findings(source):
    return analyze_source(textwrap.dedent(source))


class _FakeModule:
    def __init__(self, path, source):
        self.path = path
        self.source = textwrap.dedent(source)
        self.tree = ast.parse(self.source)
        self.is_test_file = False


def _hot_index(path, source):
    source = textwrap.dedent(source)
    directives, _ = parse_directives(source)
    program = collect_program([(path, ast.parse(source), directives)])
    return program, compute_hotness(program)


def _is_hot(program, index, qualname):
    for minfo in program.modules:
        for function in minfo.functions:
            if function.qualname == qualname:
                return index.is_hot(function)
    raise AssertionError(f"no function {qualname!r} in program")


class TestDirectiveParsing:
    def test_valid_hot_aliases(self):
        for spelling, value in (("yes", True), ("no", False), ("true", True)):
            directives, malformed = parse_directives(
                f"def f():  # els: hot={spelling}\n    pass\n"
            )
            assert malformed == []
            assert directives[0].kind == "hot"
            assert directives[0].hot is value

    def test_unknown_hot_value_is_perf_family(self):
        _, malformed = parse_directives("def f():  # els: hot=maybe\n    pass\n")
        assert len(malformed) == 1
        assert malformed[0].family == "perf"


class TestELS600Directives:
    def test_malformed_hot_value_fires(self):
        assert "ELS600" in codes(
            """
            def f():  # els: hot=sometimes
                pass
            """
        )

    def test_misplaced_hot_directive_fires(self):
        assert "ELS600" in codes(
            """
            def f():
                x = 1  # els: hot=yes
                return x
            """
        )

    def test_def_line_pin_is_clean(self):
        assert codes(
            """
            def helper():  # els: hot=yes
                pass
            """
        ) == []


class TestHotness:
    def test_estimate_prefix_is_a_root(self):
        program, index = _hot_index(
            "src/x.py", "def estimate_size():\n    pass\n"
        )
        assert _is_hot(program, index, "estimate_size")

    def test_entry_names_are_roots(self):
        for name in sorted(HOT_ENTRY_NAMES):
            program, index = _hot_index(
                "src/x.py", f"def {name}():\n    pass\n"
            )
            assert _is_hot(program, index, name)

    def test_estimator_class_methods_are_roots(self):
        program, index = _hot_index(
            "src/x.py",
            """
            class JoinSizeEstimator:
                def combine(self):
                    pass
            """,
        )
        assert _is_hot(program, index, "JoinSizeEstimator.combine")

    def test_execution_module_path_is_a_root(self):
        program, index = _hot_index(
            "src/repro/execution/ops.py", "def helper():\n    pass\n"
        )
        assert _is_hot(program, index, "helper")

    def test_plain_function_is_cold(self):
        program, index = _hot_index("src/x.py", "def helper():\n    pass\n")
        assert not _is_hot(program, index, "helper")

    def test_hotness_propagates_to_callees(self):
        program, index = _hot_index(
            "src/x.py",
            """
            def helper():
                pass

            def estimate_size():
                helper()
            """,
        )
        assert _is_hot(program, index, "helper")

    def test_hot_no_pin_blocks_propagation(self):
        program, index = _hot_index(
            "src/x.py",
            """
            def setup():  # els: hot=no
                pass

            def estimate_size():
                setup()
            """,
        )
        assert not _is_hot(program, index, "setup")


class TestELS601RowIteration:
    def test_tuples_iteration_fires(self):
        assert "ELS601" in codes(
            """
            def estimate_count(block):
                total = 0
                for row in block.tuples():
                    total = total + 1
                return total
            """
        )

    def test_range_num_rows_fires(self):
        assert "ELS601" in codes(
            """
            def estimate_count(block):
                total = 0
                for i in range(block.num_rows):
                    total = total + 1
                return total
            """
        )

    def test_range_len_gathered_column_fires(self):
        assert "ELS601" in codes(
            """
            def estimate_count(block):
                values = block.column(0)
                total = 0
                for i in range(len(values)):
                    total = total + 1
                return total
            """
        )

    def test_row_converter_contract_is_exempt(self):
        assert codes(
            """
            class ScanOp:
                def rows(self):
                    for row in self._block.tuples():
                        yield row
            """
        ) == []

    def test_cold_function_is_exempt(self):
        assert codes(
            """
            def report(block):
                for row in block.tuples():
                    print(row)
            """
        ) == []


class TestELS602Membership:
    def test_list_literal_membership_fires(self):
        assert "ELS602" in codes(
            """
            def estimate_ops(predicates):
                for p in predicates:
                    if p.op in ["eq", "lt", "gt"]:
                        yield p
            """
        )

    def test_invariant_list_membership_fires(self):
        assert "ELS602" in codes(
            """
            def estimate_ops(predicates):
                keep = ["eq", "lt", "gt"]
                for p in predicates:
                    if p.op in keep:
                        yield p
            """
        )

    def test_tuple_membership_is_clean(self):
        assert codes(
            """
            def estimate_ops(predicates):
                keep = ("eq", "lt", "gt")
                for p in predicates:
                    if p.op in keep:
                        yield p
            """
        ) == []

    def test_list_rebuilt_in_loop_is_clean(self):
        assert codes(
            """
            def estimate_ops(groups):
                for group in groups:
                    members = list(group)
                    if group.head in members:
                        yield group
            """
        ) == []


class TestELS603Accumulation:
    def test_str_augassign_fires(self):
        assert "ELS603" in codes(
            """
            def estimate_key(parts):
                key = ""
                for part in parts:
                    key += part
                return key
            """
        )

    def test_list_rebind_fires(self):
        assert "ELS603" in codes(
            """
            def estimate_all(groups):
                out = []
                for group in groups:
                    out = out + [group]
                return out
            """
        )

    def test_append_in_loop_is_clean(self):
        assert codes(
            """
            def estimate_all(groups):
                out = []
                for group in groups:
                    out.append(group)
                return out
            """
        ) == []

    def test_numeric_augassign_is_clean(self):
        assert codes(
            """
            def estimate_total(sizes):
                total = 0
                for size in sizes:
                    total += size
                return total
            """
        ) == []


class TestELS604DigestInLoop:
    def test_digest_call_in_loop_fires(self):
        assert "ELS604" in codes(
            """
            def estimate_lookup(payloads, completed):
                for payload in payloads:
                    if payload.fingerprint() in completed:
                        continue
            """
        )

    def test_hashlib_in_loop_fires_once(self):
        found = [
            d.code
            for d in findings(
                """
                import hashlib

                def estimate_keys(items):
                    for item in items:
                        key = hashlib.blake2b(item).hexdigest()
                        yield key
                """
            )
        ]
        assert found == ["ELS604"]

    def test_digest_in_comprehension_is_clean(self):
        assert codes(
            """
            def estimate_lookup(payloads, completed):
                keys = {p.index: p.fingerprint() for p in payloads}
                for payload in payloads:
                    if keys[payload.index] in completed:
                        continue
            """
        ) == []

    def test_digest_named_function_is_exempt(self):
        assert codes(
            """
            def estimate_fingerprint(parts):
                for part in parts:
                    part.digest()
            """
        ) == []


class TestELS605AllocInLoop:
    def test_lambda_in_loop_fires(self):
        assert "ELS605" in codes(
            """
            def estimate_ranks(rows, sizes):
                for row in rows:
                    row.sort(key=lambda r: sizes[r])
            """
        )

    def test_nested_def_in_loop_fires(self):
        assert "ELS605" in codes(
            """
            def estimate_ranks(rows):
                for row in rows:
                    def rank(r):
                        return r.size
                    row.sort(key=rank)
            """
        )

    def test_re_compile_in_loop_fires(self):
        assert "ELS605" in codes(
            """
            import re

            def estimate_matches(lines):
                for line in lines:
                    if re.compile(r"x+").match(line):
                        yield line
            """
        )

    def test_deepcopy_in_loop_fires(self):
        assert "ELS605" in codes(
            """
            import copy

            def estimate_variants(plans):
                for plan in plans:
                    yield copy.deepcopy(plan)
            """
        )

    def test_hoisted_lambda_is_clean(self):
        assert codes(
            """
            def estimate_ranks(rows, sizes):
                rank = lambda r: sizes[r]
                for row in rows:
                    row.sort(key=rank)
            """
        ) == []


class TestELS606Materialization:
    def test_sum_listcomp_fires_as_warning(self):
        result = findings(
            """
            def estimate_total(sizes):
                return sum([s * 2 for s in sizes])
            """
        )
        assert [d.code for d in result] == ["ELS606"]
        assert result[0].severity.value == "warning"

    def test_sum_generator_is_clean(self):
        assert codes(
            """
            def estimate_total(sizes):
                return sum(s * 2 for s in sizes)
            """
        ) == []


class TestELS607Pins:
    def test_redundant_hot_yes_pin_fires(self):
        assert "ELS607" in codes(
            """
            def estimate_size():  # els: hot=yes
                pass
            """
        )

    def test_useful_hot_yes_pin_is_clean(self):
        assert codes(
            """
            def evaluate_workloads():  # els: hot=yes
                pass
            """
        ) == []

    def test_stale_hot_no_pin_fires(self):
        assert "ELS607" in codes(
            """
            def setup():  # els: hot=no
                pass
            """
        )

    def test_blocking_hot_no_pin_is_clean(self):
        assert codes(
            """
            def setup():  # els: hot=no
                pass

            def estimate_size():
                setup()
            """
        ) == []


class TestInterprocedural:
    def test_hazard_in_hot_callee_names_origin(self):
        result = findings(
            """
            def helper(items):
                out = ""
                for item in items:
                    out += item
                return out

            def execute(items):
                return helper(items)
            """
        )
        assert [d.code for d in result] == ["ELS603"]
        assert "hot via 'execute'" in result[0].message

    def test_cross_module_propagation(self):
        helper = _FakeModule(
            "src/helpers.py",
            """
            def join_key(parts):
                key = ""
                for part in parts:
                    key += part
                return key
            """,
        )
        driver = _FakeModule(
            "src/driver.py",
            """
            from helpers import join_key

            def estimate_size(parts):
                return join_key(parts)
            """,
        )
        found = [d.code for d in analyze_modules([helper, driver])]
        assert found == ["ELS603"]

    def test_test_files_are_skipped(self):
        module = _FakeModule(
            "tests/test_x.py",
            """
            def estimate_size(parts):
                key = ""
                for part in parts:
                    key += part
                return key
            """,
        )
        module.is_test_file = True
        assert analyze_modules([module]) == []


class TestDogfoodShapes:
    def test_pre_fix_harness_fingerprint_loop_fires(self):
        result = findings(
            """
            def evaluate_workloads(payloads, completed):  # els: hot=yes
                for payload in payloads:
                    row = completed.get(payload.fingerprint())
                    if row is not None:
                        yield row
            """
        )
        assert "ELS604" in [d.code for d in result]

    def test_pre_fix_greedy_order_lambda_fires(self):
        result = findings(
            """
            def estimate_order(remaining, sizes):
                order = []
                while remaining:
                    chosen = min(remaining, key=lambda r: (sizes[r], r))
                    remaining.remove(chosen)
                    order.append(chosen)
                return order
            """
        )
        assert "ELS605" in [d.code for d in result]


class TestEngineIntegration:
    HAZARD = textwrap.dedent(
        """
        __all__ = ["estimate_key"]


        def estimate_key(parts):
            key = ""
            for part in parts:
                key += part
            return key
        """
    )

    def test_perf_flag_off_by_default(self):
        assert [d.code for d in lint_source(self.HAZARD)] == []

    def test_perf_flag_on(self):
        found = [d.code for d in lint_source(self.HAZARD, perf=True)]
        assert found == ["ELS603"]

    def test_noqa_suppresses_els6xx(self):
        source = self.HAZARD.replace(
            "key += part", "key += part  # els: noqa[ELS603]"
        )
        assert [d.code for d in lint_source(source, perf=True)] == []

    def test_unused_els6_suppression_reports_els199(self):
        source = self.HAZARD.replace(
            "return key", "return key  # els: noqa[ELS603]"
        )
        found = [d.code for d in lint_source(source, perf=True)]
        assert "ELS199" in found

    def test_every_code_is_known(self):
        valid = known_codes()
        for code in PERF_CODES:
            assert code in valid

    def test_every_code_has_metadata(self):
        for code, (summary, severity) in PERF_CODES.items():
            assert code.startswith("ELS6")
            assert summary
            assert severity.value in ("error", "warning")
