"""Operator tests: every physical operator against brute-force expectation."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.execution import (
    ExecutionMetrics,
    FilterOp,
    HashJoinOp,
    NestedLoopJoinOp,
    ProjectOp,
    SortMergeJoinOp,
    TableScanOp,
)
from repro.sql import ColumnRef, Op, join_predicate, local_predicate


def scan(relation, columns, rows, metrics, pages=0.0):
    return TableScanOp(relation, columns, rows, metrics, pages)


def brute_force_join(left_rows, right_rows, condition):
    return [l + r for l in left_rows for r in right_rows if condition(l, r)]


class TestTableScan:
    def test_emits_all_rows(self):
        metrics = ExecutionMetrics()
        op = scan("R", ["x"], [(1,), (2,)], metrics)
        assert list(op.rows()) == [(1,), (2,)]
        assert op.stats.rows_out == 2

    def test_layout_qualified_by_relation(self):
        metrics = ExecutionMetrics()
        op = scan("alias", ["x"], [], metrics)
        assert op.layout.columns == (ColumnRef("alias", "x"),)

    def test_pages_charged(self):
        metrics = ExecutionMetrics()
        op = scan("R", ["x"], [(1,)], metrics, pages=7.0)
        op.rows()
        assert metrics.total_pages_read == 7.0

    def test_repeated_calls_charge_once(self):
        """A scan re-read by a multi-call plan (nested-loop inner) must not
        double-count rows or simulated page I/O."""
        metrics = ExecutionMetrics()
        op = scan("R", ["x"], [(1,), (2,)], metrics, pages=3.0)
        first = op.rows()
        second = op.rows()
        assert first is second
        assert op.stats.rows_in == 2 and op.stats.rows_out == 2
        assert metrics.total_pages_read == 3.0

    def test_generator_source_survives_rereads(self):
        metrics = ExecutionMetrics()
        op = scan("R", ["x"], ((i,) for i in range(3)), metrics)
        assert list(op.rows()) == [(0,), (1,), (2,)]
        assert list(op.rows()) == [(0,), (1,), (2,)]

    def test_materialization_is_frozen(self):
        """The shared materialization must be immutable: a downstream
        consumer mutating it would corrupt every later re-read."""
        metrics = ExecutionMetrics()
        op = scan("R", ["x"], [(1,), (2,)], metrics)
        rows = op.rows()
        assert isinstance(rows, tuple)
        with pytest.raises((TypeError, AttributeError)):
            rows.append((3,))  # type: ignore[union-attr]
        assert list(op.rows()) == [(1,), (2,)]


class TestFilter:
    def test_filters_rows(self):
        metrics = ExecutionMetrics()
        source = scan("R", ["x"], [(i,) for i in range(10)], metrics)
        op = FilterOp(source, [local_predicate("R", "x", Op.LT, 5)], metrics)
        assert op.rows() == [(i,) for i in range(5)]
        assert op.stats.rows_in == 10 and op.stats.rows_out == 5

    def test_conjunction(self):
        metrics = ExecutionMetrics()
        source = scan("R", ["x"], [(i,) for i in range(10)], metrics)
        op = FilterOp(
            source,
            [
                local_predicate("R", "x", Op.GE, 3),
                local_predicate("R", "x", Op.LE, 6),
            ],
            metrics,
        )
        assert [r[0] for r in op.rows()] == [3, 4, 5, 6]


class TestProject:
    def test_keeps_selected_columns(self):
        metrics = ExecutionMetrics()
        source = scan("R", ["x", "y"], [(1, 10), (2, 20)], metrics)
        op = ProjectOp(source, [ColumnRef("R", "y")], metrics)
        assert op.rows() == [(10,), (20,)]

    def test_reorders_columns(self):
        metrics = ExecutionMetrics()
        source = scan("R", ["x", "y"], [(1, 10)], metrics)
        op = ProjectOp(source, [ColumnRef("R", "y"), ColumnRef("R", "x")], metrics)
        assert op.rows() == [(10, 1)]


JOIN_CLASSES = [NestedLoopJoinOp, HashJoinOp, SortMergeJoinOp]


class TestEquiJoins:
    LEFT_ROWS = [(1, "a"), (2, "b"), (2, "c"), (3, "d")]
    RIGHT_ROWS = [(2, "x"), (2, "y"), (3, "z"), (4, "w")]

    @pytest.mark.parametrize("join_class", JOIN_CLASSES)
    def test_matches_brute_force(self, join_class):
        metrics = ExecutionMetrics()
        # Numeric-only variant so sort-merge keys are orderable.
        left = scan("L", ["k", "v"], [(k, i) for i, (k, _) in enumerate(self.LEFT_ROWS)], metrics)
        right = scan("R", ["k", "v"], [(k, i) for i, (k, _) in enumerate(self.RIGHT_ROWS)], metrics)
        op = join_class(left, right, [join_predicate("L", "k", "R", "k")], metrics)
        expected = brute_force_join(
            left.rows(), right.rows(), lambda l, r: l[0] == r[0]
        )
        assert sorted(op.rows()) == sorted(expected)

    @pytest.mark.parametrize("join_class", JOIN_CLASSES)
    def test_duplicate_keys_cross_product(self, join_class):
        metrics = ExecutionMetrics()
        left = scan("L", ["k"], [(1,), (1,), (1,)], metrics)
        right = scan("R", ["k"], [(1,), (1,)], metrics)
        op = join_class(left, right, [join_predicate("L", "k", "R", "k")], metrics)
        assert len(op.rows()) == 6

    @pytest.mark.parametrize("join_class", JOIN_CLASSES)
    def test_empty_inputs(self, join_class):
        metrics = ExecutionMetrics()
        left = scan("L", ["k"], [], metrics)
        right = scan("R", ["k"], [(1,)], metrics)
        op = join_class(left, right, [join_predicate("L", "k", "R", "k")], metrics)
        assert op.rows() == []

    @pytest.mark.parametrize("join_class", JOIN_CLASSES)
    def test_no_matches(self, join_class):
        metrics = ExecutionMetrics()
        left = scan("L", ["k"], [(1,)], metrics)
        right = scan("R", ["k"], [(2,)], metrics)
        op = join_class(left, right, [join_predicate("L", "k", "R", "k")], metrics)
        assert op.rows() == []

    @pytest.mark.parametrize("join_class", JOIN_CLASSES)
    def test_residual_predicate_applied(self, join_class):
        metrics = ExecutionMetrics()
        left = scan("L", ["k", "v"], [(1, 10), (1, 30)], metrics)
        right = scan("R", ["k", "w"], [(1, 20)], metrics)
        op = join_class(
            left,
            right,
            [
                join_predicate("L", "k", "R", "k"),
                join_predicate("L", "v", "R", "w", Op.LT),
            ],
            metrics,
        )
        rows = op.rows()
        assert rows == [(1, 10, 1, 20)]

    @pytest.mark.parametrize("join_class", JOIN_CLASSES)
    def test_multi_key_join(self, join_class):
        metrics = ExecutionMetrics()
        left = scan("L", ["a", "b"], [(1, 1), (1, 2), (2, 1)], metrics)
        right = scan("R", ["a", "b"], [(1, 1), (2, 1)], metrics)
        op = join_class(
            left,
            right,
            [join_predicate("L", "a", "R", "a"), join_predicate("L", "b", "R", "b")],
            metrics,
        )
        assert sorted(op.rows()) == [(1, 1, 1, 1), (2, 1, 2, 1)]


class TestSingleKeySpecialization:
    """Keyed joins use bare values (no tuple wrap) for single-column keys."""

    @pytest.mark.parametrize("join_class", [HashJoinOp, SortMergeJoinOp])
    def test_single_key_functions_return_bare_values(self, join_class):
        metrics = ExecutionMetrics()
        op = join_class(
            scan("L", ["k"], [(7,)], metrics),
            scan("R", ["k"], [(7,)], metrics),
            [join_predicate("L", "k", "R", "k")],
            metrics,
        )
        left_key, right_key = op._key_functions()
        assert left_key((7,)) == 7 and right_key((7,)) == 7

    @pytest.mark.parametrize("join_class", [HashJoinOp, SortMergeJoinOp])
    def test_multi_key_functions_return_tuples(self, join_class):
        metrics = ExecutionMetrics()
        op = join_class(
            scan("L", ["a", "b"], [(1, 2)], metrics),
            scan("R", ["a", "b"], [(1, 2)], metrics),
            [
                join_predicate("L", "a", "R", "a"),
                join_predicate("L", "b", "R", "b"),
            ],
            metrics,
        )
        left_key, right_key = op._key_functions()
        assert left_key((1, 2)) == (1, 2) and right_key((1, 2)) == (1, 2)

    def test_single_key_join_with_unhashable_free_values(self):
        """Only the key column must be hashable; payload columns need not
        be — the specialization must never hash the whole row."""
        metrics = ExecutionMetrics()
        left = scan("L", ["k", "payload"], [(1, [10]), (2, [20])], metrics)
        right = scan("R", ["k"], [(1,), (2,)], metrics)
        op = HashJoinOp(left, right, [join_predicate("L", "k", "R", "k")], metrics)
        assert sorted(op.rows(), key=lambda r: r[0]) == [(1, [10], 1), (2, [20], 2)]


class TestNestedLoopsSpecifics:
    def test_cartesian_product_supported(self):
        metrics = ExecutionMetrics()
        left = scan("L", ["x"], [(1,), (2,)], metrics)
        right = scan("R", ["y"], [(10,), (20,)], metrics)
        op = NestedLoopJoinOp(left, right, [], metrics)
        assert len(op.rows()) == 4

    def test_non_equi_only_join(self):
        metrics = ExecutionMetrics()
        left = scan("L", ["x"], [(1,), (5,)], metrics)
        right = scan("R", ["y"], [(3,)], metrics)
        op = NestedLoopJoinOp(
            left, right, [join_predicate("L", "x", "R", "y", Op.LT)], metrics
        )
        assert op.rows() == [(1, 3)]

    def test_comparison_count_is_quadratic(self):
        metrics = ExecutionMetrics()
        left = scan("L", ["x"], [(i,) for i in range(10)], metrics)
        right = scan("R", ["y"], [(i,) for i in range(20)], metrics)
        op = NestedLoopJoinOp(
            left, right, [join_predicate("L", "x", "R", "y")], metrics
        )
        op.rows()
        assert op.stats.comparisons == 200


class TestKeyedJoinRequirements:
    def test_hash_join_requires_key(self):
        metrics = ExecutionMetrics()
        left = scan("L", ["x"], [], metrics)
        right = scan("R", ["y"], [], metrics)
        with pytest.raises(ExecutionError):
            HashJoinOp(left, right, [], metrics)

    def test_sort_merge_requires_key(self):
        metrics = ExecutionMetrics()
        left = scan("L", ["x"], [], metrics)
        right = scan("R", ["y"], [], metrics)
        with pytest.raises(ExecutionError):
            SortMergeJoinOp(
                left, right, [join_predicate("L", "x", "R", "y", Op.LT)], metrics
            )


class TestJoinProperties:
    @given(
        left=st.lists(st.integers(min_value=0, max_value=8), max_size=30),
        right=st.lists(st.integers(min_value=0, max_value=8), max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_all_methods_agree(self, left, right):
        """NL, hash, and sort-merge must produce identical multisets."""
        results = []
        for join_class in JOIN_CLASSES:
            metrics = ExecutionMetrics()
            l_op = scan("L", ["k"], [(v,) for v in left], metrics)
            r_op = scan("R", ["k"], [(v,) for v in right], metrics)
            op = join_class(l_op, r_op, [join_predicate("L", "k", "R", "k")], metrics)
            results.append(sorted(op.rows()))
        assert results[0] == results[1] == results[2]

    @given(
        left=st.lists(st.integers(min_value=0, max_value=5), max_size=20),
        right=st.lists(st.integers(min_value=0, max_value=5), max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_join_size_formula_on_keys(self, left, right):
        """|L >< R| equals sum over values of count_L(v) * count_R(v)."""
        expected = sum(
            left.count(v) * right.count(v) for v in set(left) | set(right)
        )
        metrics = ExecutionMetrics()
        l_op = scan("L", ["k"], [(v,) for v in left], metrics)
        r_op = scan("R", ["k"], [(v,) for v in right], metrics)
        op = HashJoinOp(l_op, r_op, [join_predicate("L", "k", "R", "k")], metrics)
        assert len(op.rows()) == expected
