"""Incremental estimator tests: the paper's examples, exact numbers."""

import pytest

from repro.catalog import Catalog
from repro.core import ELS, SM, SSS, EstimatorConfig, JoinSizeEstimator, SelectivityRule
from repro.core.estimator import two_way_join_size
from repro.errors import EstimationError
from repro.sql import Op, join_predicate, local_predicate, parse_query
from repro.sql.query import Query


class TestTwoWayJoinSize:
    def test_equation_1(self):
        """||R2 >< R3|| = 1000 * 1000 * 0.001 = 1000 (Example 1b)."""
        assert two_way_join_size(1000, 100, 1000, 1000) == pytest.approx(1000.0)

    def test_symmetry(self):
        assert two_way_join_size(10, 5, 20, 8) == two_way_join_size(20, 8, 10, 5)


class TestExample1b:
    def test_join_selectivities(self, catalog_1b, query_1b):
        estimator = JoinSizeEstimator(query_1b, catalog_1b, ELS)
        assert estimator.selectivity_of(
            join_predicate("R1", "x", "R2", "y")
        ) == pytest.approx(0.01)
        assert estimator.selectivity_of(
            join_predicate("R2", "y", "R3", "z")
        ) == pytest.approx(0.001)
        assert estimator.selectivity_of(
            join_predicate("R1", "x", "R3", "z")
        ) == pytest.approx(0.001)

    def test_r2_r3_intermediate(self, catalog_1b, query_1b):
        estimator = JoinSizeEstimator(query_1b, catalog_1b, ELS)
        state = estimator.start("R2")
        state, _ = estimator.join(state, "R3")
        assert state.rows == pytest.approx(1000.0)

    def test_three_way_equation_3(self, catalog_1b, query_1b):
        """||R1 >< R2 >< R3|| = (100*1000*1000)/(100*1000) = 1000."""
        estimator = JoinSizeEstimator(query_1b, catalog_1b, ELS)
        assert estimator.estimate(["R1", "R2", "R3"]) == pytest.approx(1000.0)
        assert estimator.closed_form() == pytest.approx(1000.0)


class TestExample2RuleM:
    def test_rule_m_underestimates_to_one(self, catalog_1b, query_1b):
        """(R2 >< R3) >< R1 under Rule M: 1000 * 100 * 0.01 * 0.001 = 1."""
        estimator = JoinSizeEstimator(query_1b, catalog_1b, SM)
        result = estimator.estimate_order(["R2", "R3", "R1"])
        assert result.intermediate_sizes[0] == pytest.approx(1000.0)
        assert result.rows == pytest.approx(1.0)


class TestExample3RuleSS:
    def test_rule_ss_underestimates_to_100(self, catalog_1b, query_1b):
        """Rule SS picks S_J3 = 0.001: 1000 * 100 * 0.001 = 100."""
        estimator = JoinSizeEstimator(query_1b, catalog_1b, SSS)
        assert estimator.estimate(["R2", "R3", "R1"]) == pytest.approx(100.0)

    def test_rule_ls_is_exact(self, catalog_1b, query_1b):
        """Rule LS picks S_J1 = 0.01: 1000 * 100 * 0.01 = 1000 (correct)."""
        estimator = JoinSizeEstimator(query_1b, catalog_1b, ELS)
        assert estimator.estimate(["R2", "R3", "R1"]) == pytest.approx(1000.0)

    def test_step_reports_used_predicate(self, catalog_1b, query_1b):
        estimator = JoinSizeEstimator(query_1b, catalog_1b, ELS)
        result = estimator.estimate_order(["R2", "R3", "R1"])
        final_step = result.steps[-1]
        assert len(final_step.eligible) == 2  # J1 and J3
        assert len(final_step.used) == 1  # LS keeps one per class
        assert final_step.used[0].selectivity == pytest.approx(0.01)


class TestRepresentativeRule:
    """Section 3.3: no constant representative is correct for all orders."""

    @pytest.mark.parametrize(
        "representative,expected", [(0.01, 10000.0), (0.001, 100.0)]
    )
    def test_sweep_matches_paper(self, catalog_1b, query_1b, representative, expected):
        config = EstimatorConfig(
            rule=SelectivityRule.REPRESENTATIVE,
            representative_selectivity=representative,
        )
        estimator = JoinSizeEstimator(query_1b, catalog_1b, config)
        assert estimator.estimate(["R2", "R3", "R1"]) == pytest.approx(expected)

    def test_derived_representative_from_class(self, catalog_1b, query_1b):
        config = EstimatorConfig(
            rule=SelectivityRule.REPRESENTATIVE, representative_choice="largest"
        )
        estimator = JoinSizeEstimator(query_1b, catalog_1b, config)
        # largest selectivity in the class is 0.01.
        assert estimator.estimate(["R2", "R3", "R1"]) == pytest.approx(10000.0)


class TestOrderDependence:
    def test_ls_is_order_invariant_with_closure(self, catalog_1b, query_1b):
        estimator = JoinSizeEstimator(query_1b, catalog_1b, ELS)
        import itertools

        estimates = {
            estimator.estimate(list(order))
            for order in itertools.permutations(["R1", "R2", "R3"])
        }
        assert all(e == pytest.approx(1000.0) for e in estimates)

    def test_ss_is_order_dependent(self, catalog_1b, query_1b):
        estimator = JoinSizeEstimator(query_1b, catalog_1b, SSS)
        a = estimator.estimate(["R2", "R3", "R1"])
        b = estimator.estimate(["R1", "R2", "R3"])
        assert a != pytest.approx(b)


class TestEligibility:
    def test_eligible_only_links_to_joined_tables(self, catalog_1b, query_1b):
        estimator = JoinSizeEstimator(query_1b, catalog_1b, ELS)
        eligible = estimator.eligible(frozenset({"R2"}), "R1")
        assert len(eligible) == 1
        assert eligible[0].predicate == join_predicate("R1", "x", "R2", "y")

    def test_eligible_includes_implied_predicates(self, catalog_1b, query_1b):
        estimator = JoinSizeEstimator(query_1b, catalog_1b, ELS)
        eligible = estimator.eligible(frozenset({"R2", "R3"}), "R1")
        assert len(eligible) == 2  # J1 plus implied J3

    def test_without_closure_no_implied_predicates(self, catalog_1b, query_1b):
        estimator = JoinSizeEstimator(query_1b, catalog_1b, ELS, apply_closure=False)
        eligible = estimator.eligible(frozenset({"R2", "R3"}), "R1")
        assert len(eligible) == 1

    def test_cartesian_step_selectivity_one(self, catalog_1b, query_1b):
        estimator = JoinSizeEstimator(query_1b, catalog_1b, ELS, apply_closure=False)
        state = estimator.start("R1")
        state, step = estimator.join(state, "R3")  # no predicate without PTC
        assert step.is_cartesian
        assert state.rows == pytest.approx(100.0 * 1000.0)


class TestLocalPredicateFolding:
    def make_catalog(self):
        return Catalog.from_stats(
            {"R": (1000, {"x": 100}), "S": (5000, {"y": 500})}
        )

    def test_effective_rows_flow_into_estimate(self):
        catalog = self.make_catalog()
        query = Query.build(
            ["R", "S"],
            [
                join_predicate("R", "x", "S", "y"),
                local_predicate("R", "x", Op.EQ, 5),
            ],
        )
        estimator = JoinSizeEstimator(query, catalog, ELS)
        # R filtered to 10 rows with d_x' = 1; selectivity 1/max(1, 500).
        assert estimator.base_rows("R") == pytest.approx(10.0)
        estimate = estimator.estimate(["R", "S"])
        assert estimate == pytest.approx(10.0 * 5000.0 / 500.0)

    def test_standard_ignores_column_effects(self):
        catalog = self.make_catalog()
        query = Query.build(
            ["R", "S"],
            [
                join_predicate("R", "x", "S", "y"),
                local_predicate("R", "x", Op.EQ, 5),
            ],
        )
        estimator = JoinSizeEstimator(query, catalog, SM, apply_closure=False)
        assert estimator.base_rows("R") == pytest.approx(10.0)
        # Standard algorithm still uses d_x = 100 -> selectivity 1/500.
        assert estimator.estimate(["R", "S"]) == pytest.approx(10.0 * 5000.0 / 500.0)

    def test_closure_propagates_local_to_other_table(self):
        """With PTC, x = 5 implies y = 5, shrinking S too."""
        catalog = self.make_catalog()
        query = Query.build(
            ["R", "S"],
            [
                join_predicate("R", "x", "S", "y"),
                local_predicate("R", "x", Op.EQ, 5),
            ],
        )
        estimator = JoinSizeEstimator(query, catalog, ELS, apply_closure=True)
        assert estimator.base_rows("S") == pytest.approx(10.0)  # 5000 / 500


class TestErrors:
    def test_unknown_table_in_order(self, catalog_1b, query_1b):
        estimator = JoinSizeEstimator(query_1b, catalog_1b, ELS)
        with pytest.raises(EstimationError):
            estimator.estimate(["R1", "QQ"])

    def test_repeated_table_in_order(self, catalog_1b, query_1b):
        estimator = JoinSizeEstimator(query_1b, catalog_1b, ELS)
        with pytest.raises(EstimationError):
            estimator.estimate(["R1", "R1"])

    def test_join_already_joined_table(self, catalog_1b, query_1b):
        estimator = JoinSizeEstimator(query_1b, catalog_1b, ELS)
        state = estimator.start("R1")
        with pytest.raises(EstimationError):
            estimator.join(state, "R1")

    def test_empty_order(self, catalog_1b, query_1b):
        estimator = JoinSizeEstimator(query_1b, catalog_1b, ELS)
        with pytest.raises(EstimationError):
            estimator.estimate([])

    def test_selectivity_of_unknown_predicate(self, catalog_1b, query_1b):
        estimator = JoinSizeEstimator(query_1b, catalog_1b, ELS)
        with pytest.raises(EstimationError):
            estimator.selectivity_of(join_predicate("R1", "a", "R2", "y"))

    def test_closed_form_unknown_table(self, catalog_1b, query_1b):
        estimator = JoinSizeEstimator(query_1b, catalog_1b, ELS)
        with pytest.raises(EstimationError):
            estimator.closed_form(["R1", "QQ"])

    def test_missing_catalog_table(self, query_1b):
        with pytest.raises(Exception):
            JoinSizeEstimator(query_1b, Catalog(), ELS)


class TestNonEquiJoins:
    def test_default_selectivity_applied(self):
        catalog = Catalog.from_stats({"A": (100, {"x": 10}), "B": (200, {"y": 20})})
        query = Query.build(["A", "B"], [join_predicate("A", "x", "B", "y", Op.LT)])
        estimator = JoinSizeEstimator(query, catalog, ELS)
        assert estimator.estimate(["A", "B"]) == pytest.approx(
            100 * 200 * ELS.default_join_selectivity
        )

    def test_non_equi_always_multiplies(self):
        catalog = Catalog.from_stats({"A": (100, {"x": 10}), "B": (200, {"y": 20})})
        query = Query.build(
            ["A", "B"],
            [
                join_predicate("A", "x", "B", "y"),
                join_predicate("A", "x", "B", "y", Op.LT),
            ],
        )
        estimator = JoinSizeEstimator(query, catalog, ELS)
        expected = 100 * 200 * (1 / 20) * ELS.default_join_selectivity
        assert estimator.estimate(["A", "B"]) == pytest.approx(expected)


class TestSMBGEstimates:
    """The Section 8 estimate columns, against the paper's exact hand math."""

    def test_sm_no_ptc(self, catalog_smbg, query_smbg):
        estimator = JoinSizeEstimator(query_smbg, catalog_smbg, SM, apply_closure=False)
        sizes = estimator.estimate_order(["S", "M", "B", "G"]).intermediate_sizes
        for size in sizes:
            assert size == pytest.approx(99.1, rel=0.01)

    def test_sm_with_ptc_collapses(self, catalog_smbg, query_smbg):
        estimator = JoinSizeEstimator(query_smbg, catalog_smbg, SM)
        sizes = estimator.estimate_order(["S", "B", "M", "G"]).intermediate_sizes
        assert sizes[0] == pytest.approx(0.2, rel=0.05)
        assert sizes[1] == pytest.approx(4e-8, rel=0.1)
        assert sizes[2] == pytest.approx(4e-21, rel=0.15)

    def test_sss_with_ptc(self, catalog_smbg, query_smbg):
        estimator = JoinSizeEstimator(query_smbg, catalog_smbg, SSS)
        sizes = estimator.estimate_order(["S", "B", "M", "G"]).intermediate_sizes
        assert sizes[0] == pytest.approx(0.2, rel=0.05)
        assert sizes[1] == pytest.approx(4e-4, rel=0.1)
        assert sizes[2] == pytest.approx(4e-7, rel=0.1)

    def test_els_estimates_are_correct(self, catalog_smbg, query_smbg):
        estimator = JoinSizeEstimator(query_smbg, catalog_smbg, ELS)
        sizes = estimator.estimate_order(["B", "G", "M", "S"]).intermediate_sizes
        for size in sizes:
            assert size == pytest.approx(99.0, rel=0.02)
