"""Ground-truth execution tests: reference plans against brute force."""

import itertools

import pytest

from repro.analysis import build_reference_plan, execute_query, true_join_size
from repro.catalog import TableSchema
from repro.errors import ExecutionError
from repro.sql import Op, parse_query
from repro.storage import Database


def tiny_database():
    db = Database()
    db.load_columns(TableSchema.of("A", "x"), {"x": [1, 2, 2, 3]})
    db.load_columns(TableSchema.of("B", "x", "y"), {"x": [2, 2, 3, 5], "y": [1, 2, 3, 4]})
    db.load_columns(TableSchema.of("C", "y"), {"y": [2, 3, 3, 9]})
    return db


def brute_force_count(db, query):
    tables = [db.table(query.base_table(t)).rows() for t in query.tables]
    layouts = []
    offset = 0
    positions = {}
    for name in query.tables:
        schema = db.table(query.base_table(name)).schema
        for i, column in enumerate(schema.column_names):
            positions[(name, column)] = offset + i
        offset += len(schema.column_names)

    def satisfied(combined):
        for predicate in query.predicates:
            left = combined[positions[(predicate.left.table, predicate.left.column)]]
            if hasattr(predicate.right, "value"):
                right = predicate.right.value
            else:
                right = combined[
                    positions[(predicate.right.table, predicate.right.column)]
                ]
            if not predicate.op.evaluate(left, right):
                return False
        return True

    count = 0
    for combo in itertools.product(*tables):
        combined = tuple(v for row in combo for v in row)
        if satisfied(combined):
            count += 1
    return count


class TestTrueJoinSize:
    def test_two_way_equijoin(self):
        db = tiny_database()
        query = parse_query("SELECT COUNT(*) FROM A, B WHERE A.x = B.x")
        assert true_join_size(query, db) == brute_force_count(db, query)

    def test_three_way_chain(self):
        db = tiny_database()
        query = parse_query(
            "SELECT COUNT(*) FROM A, B, C WHERE A.x = B.x AND B.y = C.y"
        )
        assert true_join_size(query, db) == brute_force_count(db, query)

    def test_with_local_predicate(self):
        db = tiny_database()
        query = parse_query(
            "SELECT COUNT(*) FROM A, B WHERE A.x = B.x AND B.y > 1"
        )
        assert true_join_size(query, db) == brute_force_count(db, query)

    def test_cartesian_product(self):
        db = tiny_database()
        query = parse_query("SELECT COUNT(*) FROM A, C")
        assert true_join_size(query, db) == 16

    def test_non_equi_join(self):
        db = tiny_database()
        query = parse_query("SELECT COUNT(*) FROM A, C WHERE A.x < C.y")
        assert true_join_size(query, db) == brute_force_count(db, query)

    def test_order_independence(self):
        db = tiny_database()
        query = parse_query(
            "SELECT COUNT(*) FROM A, B, C WHERE A.x = B.x AND B.y = C.y"
        )
        counts = {
            true_join_size(query, db, order=list(order))
            for order in itertools.permutations(["A", "B", "C"])
        }
        assert len(counts) == 1

    def test_single_table(self):
        db = tiny_database()
        query = parse_query("SELECT COUNT(*) FROM A WHERE A.x = 2")
        assert true_join_size(query, db) == 2

    def test_invalid_order_rejected(self):
        db = tiny_database()
        query = parse_query("SELECT COUNT(*) FROM A, B WHERE A.x = B.x")
        with pytest.raises(ExecutionError):
            build_reference_plan(query, db, order=["A"])


class TestExecuteQuery:
    def test_count_star_projection(self):
        db = tiny_database()
        query = parse_query("SELECT COUNT(*) FROM A, B WHERE A.x = B.x")
        result = execute_query(query, db)
        assert result.count == brute_force_count(db, query)
        assert result.rows == []

    def test_column_projection(self):
        db = tiny_database()
        query = parse_query("SELECT A.x FROM A, B WHERE A.x = B.x")
        result = execute_query(query, db)
        assert all(len(row) == 1 for row in result.rows)

    def test_greedy_order_prefers_connected(self):
        """The default order should not create avoidable cross products."""
        db = tiny_database()
        query = parse_query(
            "SELECT COUNT(*) FROM A, B, C WHERE A.x = B.x AND B.y = C.y"
        )
        plan = build_reference_plan(query, db)
        node = plan
        while hasattr(node, "left"):
            assert node.predicates, "reference plan introduced a cartesian product"
            node = node.left
