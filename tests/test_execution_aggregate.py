"""Hash aggregation tests."""

import pytest

from repro.errors import ExecutionError
from repro.execution import ExecutionMetrics, TableScanOp
from repro.execution.aggregate import AggregateFunction, AggregateSpec, HashAggregateOp
from repro.sql import ColumnRef


def scan(rows, columns=("g", "v")):
    metrics = ExecutionMetrics()
    return TableScanOp("R", list(columns), rows, metrics), metrics


def spec(function, column=None, alias=""):
    ref = ColumnRef("R", column) if column else None
    return AggregateSpec(AggregateFunction(function), ref, alias)


class TestSpecs:
    def test_count_star_rejects_column(self):
        with pytest.raises(ExecutionError):
            AggregateSpec(AggregateFunction.COUNT, ColumnRef("R", "v"))

    def test_sum_requires_column(self):
        with pytest.raises(ExecutionError):
            AggregateSpec(AggregateFunction.SUM)

    def test_default_alias(self):
        assert spec("sum", "v").alias == "sum_v"
        assert spec("count").alias == "count_star"

    def test_explicit_alias(self):
        assert spec("min", "v", alias="lowest").alias == "lowest"


class TestScalarAggregates:
    ROWS = [(1, 10), (1, 20), (2, 5), (3, 5)]

    def run(self, *specs):
        source, metrics = scan(self.ROWS)
        op = HashAggregateOp(source, [], list(specs), metrics)
        return op.rows()

    def test_count(self):
        assert self.run(spec("count")) == [(4,)]

    def test_sum_min_max_avg(self):
        rows = self.run(
            spec("sum", "v"), spec("min", "v"), spec("max", "v"), spec("avg", "v")
        )
        assert rows == [(40.0, 5, 20, 10.0)]

    def test_empty_input_scalar_semantics(self):
        source, metrics = scan([])
        op = HashAggregateOp(
            source, [], [spec("count"), spec("sum", "v")], metrics
        )
        assert op.rows() == [(0, None)]

    def test_no_aggregates_rejected(self):
        source, metrics = scan(self.ROWS)
        with pytest.raises(ExecutionError):
            HashAggregateOp(source, [], [], metrics)


class TestGroupBy:
    ROWS = [(1, 10), (1, 20), (2, 5), (3, 5)]

    def test_count_per_group(self):
        source, metrics = scan(self.ROWS)
        op = HashAggregateOp(
            source, [ColumnRef("R", "g")], [spec("count")], metrics
        )
        assert op.rows() == [(1, 2), (2, 1), (3, 1)]

    def test_sum_per_group(self):
        source, metrics = scan(self.ROWS)
        op = HashAggregateOp(
            source, [ColumnRef("R", "g")], [spec("sum", "v")], metrics
        )
        assert op.rows() == [(1, 30.0), (2, 5.0), (3, 5.0)]

    def test_group_by_empty_input_emits_nothing(self):
        source, metrics = scan([])
        op = HashAggregateOp(
            source, [ColumnRef("R", "g")], [spec("count")], metrics
        )
        assert op.rows() == []

    def test_output_layout(self):
        source, metrics = scan(self.ROWS)
        op = HashAggregateOp(
            source,
            [ColumnRef("R", "g")],
            [spec("count"), spec("max", "v", alias="peak")],
            metrics,
        )
        assert op.layout.columns == (
            ColumnRef("R", "g"),
            ColumnRef("agg", "count_star"),
            ColumnRef("agg", "peak"),
        )

    def test_multi_column_group(self):
        rows = [(1, 1, 100), (1, 1, 200), (1, 2, 300)]
        metrics = ExecutionMetrics()
        source = TableScanOp("R", ["a", "b", "v"], rows, metrics)
        op = HashAggregateOp(
            source,
            [ColumnRef("R", "a"), ColumnRef("R", "b")],
            [AggregateSpec(AggregateFunction.SUM, ColumnRef("R", "v"))],
            metrics,
        )
        assert op.rows() == [(1, 1, 300.0), (1, 2, 300.0)]

    def test_metrics_recorded(self):
        source, metrics = scan(self.ROWS)
        op = HashAggregateOp(source, [ColumnRef("R", "g")], [spec("count")], metrics)
        op.rows()
        assert op.stats.rows_in == 4
        assert op.stats.rows_out == 3
