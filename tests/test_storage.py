"""Storage engine tests: tables, validation, the database handle."""

import pytest

from repro.catalog import ColumnDef, ColumnType, TableSchema
from repro.errors import CatalogError, StorageError
from repro.storage import Database, Table


def schema_rx():
    return TableSchema.of("R", "x", "y")


class TestTableAppend:
    def test_append_tuple(self):
        table = Table(schema_rx())
        table.append((1, 2))
        assert table.row_count == 1
        assert list(table.scan()) == [(1, 2)]

    def test_append_mapping(self):
        table = Table(schema_rx())
        table.append({"y": 2, "x": 1})
        assert table.rows() == [(1, 2)]

    def test_append_mapping_missing_column(self):
        table = Table(schema_rx())
        with pytest.raises(StorageError):
            table.append({"x": 1})

    def test_arity_mismatch(self):
        table = Table(schema_rx())
        with pytest.raises(StorageError):
            table.append((1,))

    def test_type_mismatch(self):
        table = Table(schema_rx())
        with pytest.raises(StorageError):
            table.append((1, "nope"))

    def test_extend_with_validation(self):
        table = Table(schema_rx())
        with pytest.raises(StorageError):
            table.extend([(1, 2), ("bad", 3)])

    def test_extend_unvalidated_is_fast_path(self):
        table = Table(schema_rx())
        table.extend([(1, 2), (3, 4)], validate=False)
        assert table.row_count == 2


class TestFromColumns:
    def test_builds_rows_in_schema_order(self):
        table = Table.from_columns(schema_rx(), {"y": [10, 20], "x": [1, 2]})
        assert table.rows() == [(1, 10), (2, 20)]

    def test_missing_column_data(self):
        with pytest.raises(StorageError):
            Table.from_columns(schema_rx(), {"x": [1]})

    def test_length_mismatch(self):
        with pytest.raises(StorageError):
            Table.from_columns(schema_rx(), {"x": [1], "y": [1, 2]})

    def test_empty_columns(self):
        table = Table.from_columns(schema_rx(), {"x": [], "y": []})
        assert table.row_count == 0


class TestTableAccessors:
    def test_column_values(self):
        table = Table.from_columns(schema_rx(), {"x": [1, 2, 2], "y": [5, 6, 7]})
        assert table.column_values("x") == [1, 2, 2]

    def test_distinct_count(self):
        table = Table.from_columns(schema_rx(), {"x": [1, 2, 2], "y": [5, 5, 5]})
        assert table.distinct_count("x") == 2
        assert table.distinct_count("y") == 1

    def test_unknown_column(self):
        table = Table(schema_rx())
        with pytest.raises(CatalogError):
            table.column_values("zz")

    def test_rows_returns_copy(self):
        table = Table.from_columns(schema_rx(), {"x": [1], "y": [2]})
        rows = table.rows()
        rows.append((9, 9))
        assert table.row_count == 1

    def test_columns_transpose_is_frozen(self):
        """The cached transpose is tuples all the way down: a caller must
        not be able to corrupt the copy served to later calls."""
        table = Table.from_columns(schema_rx(), {"x": [1, 2], "y": [5, 6]})
        columns = table.columns()
        assert columns == ((1, 2), (5, 6))
        assert all(isinstance(column, tuple) for column in columns)
        assert table.columns() == ((1, 2), (5, 6))

    def test_columns_cache_revalidates_after_append(self):
        table = Table.from_columns(schema_rx(), {"x": [1], "y": [5]})
        assert table.columns() == ((1,), (5,))
        table.append((2, 6))
        assert table.columns() == ((1, 2), (5, 6))

    def test_empty_table_columns_are_tuples(self):
        table = Table(schema_rx())
        assert table.columns() == ((), ())

    def test_string_column_type_enforced(self):
        schema = TableSchema.of("S", ColumnDef("name", ColumnType.STR))
        table = Table(schema)
        table.append(("alice",))
        with pytest.raises(StorageError):
            table.append((42,))


class TestDatabase:
    def test_create_and_get(self):
        db = Database()
        db.create_table(schema_rx())
        assert "R" in db
        assert db.table("R").row_count == 0

    def test_duplicate_create_rejected(self):
        db = Database()
        db.create_table(schema_rx())
        with pytest.raises(StorageError):
            db.create_table(schema_rx())

    def test_unknown_table(self):
        with pytest.raises(StorageError):
            Database().table("nope")

    def test_drop(self):
        db = Database()
        db.create_table(schema_rx())
        db.drop_table("R")
        assert "R" not in db
        with pytest.raises(StorageError):
            db.drop_table("R")

    def test_load_columns(self):
        db = Database()
        db.load_columns(schema_rx(), {"x": [1, 2], "y": [3, 4]})
        assert db.table("R").row_count == 2
        with pytest.raises(StorageError):
            db.load_columns(schema_rx(), {"x": [], "y": []})

    def test_load_rows(self):
        db = Database()
        db.load_rows(schema_rx(), [(1, 2)])
        assert db.true_count("R") == 1

    def test_analyze_populates_catalog(self):
        db = Database()
        db.load_columns(schema_rx(), {"x": [1, 2, 2], "y": [1, 1, 1]})
        db.analyze()
        assert db.catalog.stats("R").row_count == 3
        assert db.catalog.column_stats("R", "x").distinct == 2

    def test_analyze_single_table(self):
        db = Database()
        db.load_columns(schema_rx(), {"x": [1], "y": [1]})
        db.load_columns(TableSchema.of("S", "z"), {"z": [1, 2]})
        db.analyze("S")
        assert "S" in db.catalog._schemas  # noqa: SLF001 - white-box check
        with pytest.raises(CatalogError):
            db.catalog.stats("R")

    def test_set_stats_overrides(self):
        from repro.catalog import TableStats

        db = Database()
        db.load_columns(schema_rx(), {"x": [1], "y": [1]})
        db.set_stats("R", TableStats.simple(999, {"x": 99}))
        assert db.catalog.stats("R").row_count == 999

    def test_table_names_sorted(self):
        db = Database()
        db.create_table(TableSchema.of("B", "x"))
        db.create_table(TableSchema.of("A", "x"))
        assert db.table_names() == ("A", "B")
