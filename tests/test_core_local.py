"""Local predicate selectivity tests: single predicates and [16] combination."""

import pytest

from repro.catalog import ColumnStats, build_equi_depth, build_mcv
from repro.core.local import (
    DEFAULT_BETWEEN_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    ColumnFilterEffect,
    combine_column_predicates,
    constant_selectivity,
)
from repro.errors import EstimationError
from repro.sql import Op, join_predicate, local_predicate


def stats_uniform(distinct=1000, low=1, high=1000):
    return ColumnStats(distinct=distinct, low=low, high=high)


class TestEqualitySelectivity:
    def test_uniformity_gives_one_over_d(self):
        pred = local_predicate("R", "x", Op.EQ, 5)
        assert constant_selectivity(pred, stats_uniform()) == pytest.approx(1 / 1000)

    def test_mcv_exact_fraction_wins(self):
        mcv = build_mcv([1] * 90 + [2] * 10, k=2)
        stats = ColumnStats(distinct=2, low=1, high=2, mcv=mcv)
        pred = local_predicate("R", "x", Op.EQ, 1)
        assert constant_selectivity(pred, stats) == pytest.approx(0.9)

    def test_equality_outside_range_is_zero(self):
        pred = local_predicate("R", "x", Op.EQ, 5000)
        assert constant_selectivity(pred, stats_uniform()) == 0.0

    def test_ne_complements_eq(self):
        eq = constant_selectivity(local_predicate("R", "x", Op.EQ, 5), stats_uniform())
        ne = constant_selectivity(local_predicate("R", "x", Op.NE, 5), stats_uniform())
        assert eq + ne == pytest.approx(1.0)

    def test_string_equality_uses_distinct(self):
        stats = ColumnStats(distinct=50)
        pred = local_predicate("R", "name", Op.EQ, "bob")
        assert constant_selectivity(pred, stats) == pytest.approx(1 / 50)


class TestRangeSelectivity:
    def test_paper_experiment_selectivity(self):
        """s < 100 over domain 1..1000 with d=1000 -> ~0.099 (99 values)."""
        pred = local_predicate("S", "s", Op.LT, 100)
        selectivity = constant_selectivity(pred, stats_uniform())
        assert selectivity == pytest.approx(99 / 999, rel=1e-6)

    def test_le_adds_one_value(self):
        lt = constant_selectivity(local_predicate("R", "x", Op.LT, 100), stats_uniform())
        le = constant_selectivity(local_predicate("R", "x", Op.LE, 100), stats_uniform())
        assert le == pytest.approx(lt + 1 / 1000)

    def test_gt_ge_symmetry(self):
        ge = constant_selectivity(local_predicate("R", "x", Op.GE, 100), stats_uniform())
        lt = constant_selectivity(local_predicate("R", "x", Op.LT, 100), stats_uniform())
        assert ge + lt == pytest.approx(1.0)

    def test_below_domain_clamps(self):
        assert (
            constant_selectivity(local_predicate("R", "x", Op.LT, -5), stats_uniform())
            == 0.0
        )
        assert (
            constant_selectivity(local_predicate("R", "x", Op.GE, -5), stats_uniform())
            == 1.0
        )

    def test_histogram_preferred_over_uniformity(self):
        # Heavily skewed data: uniformity says ~0.5, histogram knows better.
        values = [1] * 900 + list(range(2, 102))
        hist = build_equi_depth(values, buckets=10)
        stats = ColumnStats(distinct=101, low=1, high=101, histogram=hist)
        pred = local_predicate("R", "x", Op.LE, 1)
        selectivity = constant_selectivity(pred, stats)
        assert selectivity > 0.5  # uniformity would give ~0.01

    def test_default_when_no_information(self):
        stats = ColumnStats(distinct=0)
        pred = local_predicate("R", "x", Op.LT, 10)
        assert constant_selectivity(pred, stats) == DEFAULT_RANGE_SELECTIVITY

    def test_single_value_domain(self):
        stats = ColumnStats(distinct=1, low=7, high=7)
        assert (
            constant_selectivity(local_predicate("R", "x", Op.LT, 10), stats) == 1.0
        )
        assert constant_selectivity(local_predicate("R", "x", Op.GT, 10), stats) == 0.0

    def test_join_predicate_rejected(self):
        with pytest.raises(EstimationError):
            constant_selectivity(join_predicate("R", "x", "S", "y"), stats_uniform())


class TestCombination:
    """The [16] rules: most restrictive equality, else tightest range pair."""

    def test_single_predicate_passthrough(self):
        effect = combine_column_predicates(
            "x", [local_predicate("R", "x", Op.LT, 100)], stats_uniform()
        )
        assert effect.selectivity == pytest.approx(99 / 999, rel=1e-6)
        assert effect.distinct_after == pytest.approx(1000 * 99 / 999, rel=1e-6)

    def test_equality_dominates_ranges(self):
        effect = combine_column_predicates(
            "x",
            [
                local_predicate("R", "x", Op.LT, 100),
                local_predicate("R", "x", Op.EQ, 50),
            ],
            stats_uniform(),
        )
        assert effect.selectivity == pytest.approx(1 / 1000)
        assert effect.distinct_after == 1.0

    def test_contradictory_equalities_zero(self):
        effect = combine_column_predicates(
            "x",
            [
                local_predicate("R", "x", Op.EQ, 5),
                local_predicate("R", "x", Op.EQ, 7),
            ],
            stats_uniform(),
        )
        assert effect.selectivity == 0.0
        assert effect.distinct_after == 0.0

    def test_equality_violating_range_zero(self):
        effect = combine_column_predicates(
            "x",
            [
                local_predicate("R", "x", Op.EQ, 500),
                local_predicate("R", "x", Op.LT, 100),
            ],
            stats_uniform(),
        )
        assert effect.selectivity == 0.0

    def test_equality_violating_ne_zero(self):
        effect = combine_column_predicates(
            "x",
            [
                local_predicate("R", "x", Op.EQ, 5),
                local_predicate("R", "x", Op.NE, 5),
            ],
            stats_uniform(),
        )
        assert effect.selectivity == 0.0

    def test_tightest_bounds_selected(self):
        # x > 100 AND x > 300 AND x < 900 AND x < 700 -> (300, 700)
        effect = combine_column_predicates(
            "x",
            [
                local_predicate("R", "x", Op.GT, 100),
                local_predicate("R", "x", Op.GT, 300),
                local_predicate("R", "x", Op.LT, 900),
                local_predicate("R", "x", Op.LT, 700),
            ],
            stats_uniform(),
        )
        expected = (700 - 300) / 999 - 1 / 1000  # interval interior
        assert effect.selectivity == pytest.approx(expected, rel=0.05)

    def test_empty_interval_zero(self):
        effect = combine_column_predicates(
            "x",
            [
                local_predicate("R", "x", Op.GT, 700),
                local_predicate("R", "x", Op.LT, 300),
            ],
            stats_uniform(),
        )
        assert effect.selectivity == 0.0

    def test_touching_bounds_need_both_inclusive(self):
        closed = combine_column_predicates(
            "x",
            [
                local_predicate("R", "x", Op.GE, 500),
                local_predicate("R", "x", Op.LE, 500),
            ],
            stats_uniform(),
        )
        open_ = combine_column_predicates(
            "x",
            [
                local_predicate("R", "x", Op.GT, 500),
                local_predicate("R", "x", Op.LT, 500),
            ],
            stats_uniform(),
        )
        assert closed.selectivity > 0.0
        assert open_.selectivity == 0.0

    def test_redundant_duplicate_range_not_double_counted(self):
        once = combine_column_predicates(
            "x", [local_predicate("R", "x", Op.LT, 500)], stats_uniform()
        )
        twice = combine_column_predicates(
            "x",
            [
                local_predicate("R", "x", Op.LT, 500),
                local_predicate("R", "x", Op.LT, 500),
            ],
            stats_uniform(),
        )
        assert twice.selectivity == pytest.approx(once.selectivity)

    def test_ne_predicates_multiply(self):
        effect = combine_column_predicates(
            "x",
            [
                local_predicate("R", "x", Op.LT, 500),
                local_predicate("R", "x", Op.NE, 100),
            ],
            stats_uniform(),
        )
        base = combine_column_predicates(
            "x", [local_predicate("R", "x", Op.LT, 500)], stats_uniform()
        )
        assert effect.selectivity == pytest.approx(base.selectivity * (1 - 1 / 1000))

    def test_between_default_without_stats(self):
        stats = ColumnStats(distinct=0)
        effect = combine_column_predicates(
            "x",
            [
                local_predicate("R", "x", Op.GT, 1),
                local_predicate("R", "x", Op.LT, 9),
            ],
            stats,
        )
        assert effect.selectivity == DEFAULT_BETWEEN_SELECTIVITY

    def test_wrong_column_rejected(self):
        with pytest.raises(EstimationError):
            combine_column_predicates(
                "x", [local_predicate("R", "y", Op.LT, 5)], stats_uniform()
            )

    def test_effect_is_value_object(self):
        effect = ColumnFilterEffect("x", 0.5, 10.0)
        assert effect.column == "x"
        assert effect.selectivity == 0.5
