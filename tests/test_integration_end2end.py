"""End-to-end integration: the Section 8 experiment at reduced scale.

Generate the S/M/B/G database, optimize under each of the paper's four
algorithm setups, execute the chosen plans, and assert the paper's
qualitative results: ELS estimates correctly, the baselines collapse to
(near) zero, every plan returns the same true count, and the ELS plan is
no more expensive than any baseline's plan.
"""

import pytest

from repro.analysis import true_join_size
from repro.core import ELS, SM, SSS, JoinSizeEstimator
from repro.execution import Executor
from repro.optimizer import Optimizer
from repro.workloads import smbg_query


SCALE = 0.1  # S=100, M=1000, B=5000, G=10000
THRESHOLD = 10  # s < 10 -> 9 selected rows at this scale


@pytest.fixture(scope="module")
def experiment(smbg_database_small):
    database = smbg_database_small
    query = smbg_query(threshold=THRESHOLD)
    optimizer = Optimizer(database.catalog)
    executor = Executor(database)
    return database, query, optimizer, executor


ALGORITHMS = [
    ("SM (no PTC)", SM, False),
    ("SM + PTC", SM, True),
    ("SSS + PTC", SSS, True),
    ("ELS", ELS, True),
]


class TestSection8EndToEnd:
    def test_true_count_invariant(self, experiment):
        """'The correct join result size after any subset of joins has been
        performed can be shown to be exactly' the selection size."""
        database, query, _, _ = experiment
        assert true_join_size(query, database) == THRESHOLD - 1

    @pytest.mark.parametrize("name,config,closure", ALGORITHMS)
    def test_every_chosen_plan_returns_true_count(
        self, experiment, name, config, closure
    ):
        database, query, optimizer, executor = experiment
        result = optimizer.optimize(query, config, apply_closure=closure)
        run = executor.count(result.plan)
        assert run.count == THRESHOLD - 1, f"{name} plan returned a wrong count"

    def test_els_estimates_match_truth(self, experiment):
        _, query, optimizer, _ = experiment
        result = optimizer.optimize(query, ELS)
        for size in result.intermediate_sizes:
            assert size == pytest.approx(THRESHOLD - 1, rel=0.15)

    def test_sm_ptc_collapses_to_zero(self, experiment):
        _, query, optimizer, _ = experiment
        result = optimizer.optimize(query, SM)
        assert result.intermediate_sizes[-1] < 1e-6

    def test_sss_between_sm_and_els(self, experiment):
        _, query, optimizer, _ = experiment
        sm = optimizer.optimize(query, SM).intermediate_sizes[-1]
        sss = optimizer.optimize(query, SSS).intermediate_sizes[-1]
        els = optimizer.optimize(query, ELS).intermediate_sizes[-1]
        assert sm < sss < els

    def test_els_plan_not_more_expensive(self, experiment):
        """ELS's correct estimates must never pick a worse plan than the
        baselines pick (measured by tuple comparisons of real execution —
        at this reduced scale every table fits in a handful of pages, so
        CPU work is the discriminating cost)."""
        database, query, optimizer, executor = experiment
        work = {}
        for name, config, closure in ALGORITHMS:
            result = optimizer.optimize(query, config, apply_closure=closure)
            run = executor.count(result.plan)
            work[name] = run.metrics.total_comparisons
        assert work["ELS"] <= min(work.values()) * 1.1

    def test_no_ptc_plan_does_more_work(self, experiment):
        """Without PTC there is no early selection on M, B, G; the executed
        plan must do measurably more work (the 610s-vs-50s effect)."""
        database, query, optimizer, executor = experiment
        no_ptc = optimizer.optimize(query, SM, apply_closure=False)
        els = optimizer.optimize(query, ELS)
        no_ptc_work = executor.count(no_ptc.plan).metrics.total_comparisons
        els_work = executor.count(els.plan).metrics.total_comparisons
        assert no_ptc_work > els_work * 3

    def test_estimator_plugs_into_optimizer_consistently(self, experiment):
        """The optimizer's reported estimates equal a fresh estimator's
        walk of the same join order."""
        _, query, optimizer, _ = experiment
        result = optimizer.optimize(query, ELS)
        fresh = JoinSizeEstimator(
            query, optimizer_catalog(optimizer), ELS
        ).estimate_order(list(result.join_order))
        assert fresh.intermediate_sizes == pytest.approx(result.intermediate_sizes)


def optimizer_catalog(optimizer):
    return optimizer._catalog  # noqa: SLF001 - test-only introspection
