"""Public API surface tests: exports resolve, docstrings exist, no leaks.

An open-source release lives or dies by its import surface.  These tests
pin it: every name in every ``__all__`` must resolve, every public module,
class, and function must carry a docstring, and the package's documented
quickstart must actually run.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.catalog",
    "repro.core",
    "repro.execution",
    "repro.lint",
    "repro.optimizer",
    "repro.resilience",
    "repro.sql",
    "repro.storage",
    "repro.workloads",
]

MODULES = PACKAGES + [
    "repro.analysis.bench",
    "repro.analysis.explain_analyze",
    "repro.analysis.graphs",
    "repro.analysis.harness",
    "repro.analysis.metrics",
    "repro.analysis.propagation",
    "repro.analysis.report",
    "repro.analysis.sensitivity",
    "repro.analysis.truth",
    "repro.analysis.truthcache",
    "repro.catalog.collector",
    "repro.catalog.histogram",
    "repro.catalog.sampling",
    "repro.catalog.schema",
    "repro.catalog.statistics",
    "repro.cli",
    "repro.core.closure",
    "repro.core.config",
    "repro.core.effective",
    "repro.core.equivalence",
    "repro.core.estimator",
    "repro.core.histjoin",
    "repro.core.local",
    "repro.core.protocols",
    "repro.core.rules",
    "repro.core.skew",
    "repro.core.urn",
    "repro.errors",
    "repro.execution.aggregate",
    "repro.execution.executor",
    "repro.execution.layout",
    "repro.execution.metrics",
    "repro.execution.operators",
    "repro.execution.parallel",
    "repro.execution.shm",
    "repro.lint.cli",
    "repro.lint.contracts",
    "repro.lint.contracts.analysis",
    "repro.lint.contracts.architecture",
    "repro.lint.contracts.baseline",
    "repro.lint.contracts.exceptions",
    "repro.lint.contracts.protocols",
    "repro.lint.diagnostics",
    "repro.lint.engine",
    "repro.lint.render",
    "repro.lint.rules_code",
    "repro.lint.semantic",
    "repro.optimizer.cost",
    "repro.optimizer.enumerate",
    "repro.optimizer.optimizer",
    "repro.optimizer.plans",
    "repro.optimizer.random_search",
    "repro.resilience.chaos",
    "repro.resilience.checkpoint",
    "repro.resilience.deadline",
    "repro.resilience.retry",
    "repro.sql.lexer",
    "repro.sql.parser",
    "repro.sql.predicates",
    "repro.sql.query",
    "repro.storage.database",
    "repro.storage.loader",
    "repro.storage.table",
    "repro.workloads.distributions",
    "repro.workloads.generator",
    "repro.workloads.paper",
    "repro.workloads.queries",
    "repro.workloads.tpch_lite",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    assert exported, f"{package_name} should declare __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} does not resolve"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    """Every public class and function defined by a module has a docstring."""
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its definition site
        if not inspect.getdoc(obj):
            undocumented.append(name)
    assert not undocumented, f"{module_name}: undocumented public items {undocumented}"


def test_version_exposed():
    import repro

    assert repro.__version__


def test_package_quickstart_runs():
    """The docstring quickstart in ``repro/__init__`` must stay true."""
    from repro import Catalog, ELS, JoinSizeEstimator, parse_query

    catalog = Catalog.from_stats(
        {
            "R1": (100, {"x": 10}),
            "R2": (1000, {"y": 100}),
            "R3": (1000, {"z": 1000}),
        }
    )
    query = parse_query(
        "SELECT * FROM R1, R2, R3 WHERE R1.x = R2.y AND R2.y = R3.z"
    )
    estimator = JoinSizeEstimator(query, catalog, ELS)
    assert estimator.estimate(["R2", "R3", "R1"]) == pytest.approx(1000.0)


class TestDocumentationConsistency:
    """DESIGN.md's experiment index must point at real bench files."""

    def test_every_bench_target_exists(self):
        import pathlib
        import re

        design = pathlib.Path(__file__).parent.parent / "DESIGN.md"
        text = design.read_text()
        targets = set(re.findall(r"`(benchmarks/bench_[a-z0-9_]+\.py)`", text))
        assert targets, "DESIGN.md lists no bench targets?"
        for target in targets:
            assert (design.parent / target).exists(), f"{target} missing"

    def test_every_bench_file_is_indexed(self):
        import pathlib
        import re

        root = pathlib.Path(__file__).parent.parent
        design_text = (root / "DESIGN.md").read_text()
        indexed = set(re.findall(r"`benchmarks/(bench_[a-z0-9_]+\.py)`", design_text))
        on_disk = {p.name for p in (root / "benchmarks").glob("bench_*.py")}
        assert on_disk == indexed, (
            f"unindexed benches: {on_disk - indexed}; stale index: {indexed - on_disk}"
        )

    def test_experiments_md_covers_every_experiment_id(self):
        import pathlib
        import re

        root = pathlib.Path(__file__).parent.parent
        design_ids = set(
            re.findall(r"^\| ([TEX][0-9A-Za-z-]*) \|", (root / "DESIGN.md").read_text(), re.M)
        )
        experiments_text = (root / "EXPERIMENTS.md").read_text()
        missing = [i for i in design_ids if i not in experiments_text]
        assert not missing, f"EXPERIMENTS.md lacks sections for {missing}"

    def test_examples_referenced_in_readme_exist(self):
        import pathlib
        import re

        root = pathlib.Path(__file__).parent.parent
        readme = (root / "README.md").read_text()
        for match in re.findall(r"examples/([a-z_]+\.py)", readme):
            assert (root / "examples" / match).exists(), match
