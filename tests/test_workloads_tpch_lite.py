"""TPC-H-lite schema and query tests, with executed ground truth."""

import pytest

from repro.analysis import true_join_size
from repro.core import ELS, SM, JoinSizeEstimator
from repro.execution import Executor
from repro.optimizer import Optimizer
from repro.workloads import (
    load_tpch_lite,
    q3_customer_orders,
    q5_regional,
    q9_parts_suppliers,
    q_full_join,
    tpch_lite_specs,
)


@pytest.fixture(scope="module")
def tpch_db():
    return load_tpch_lite(scale=0.02, seed=3)


class TestSchema:
    def test_spec_shapes(self):
        specs = {spec.name: spec for spec in tpch_lite_specs(scale=0.1)}
        assert specs["region"].rows == 5  # dimensions do not scale
        assert specs["nation"].rows == 25
        assert specs["lineitem"].rows == 60000
        assert specs["orders"].columns["o_id"].distinct == specs["orders"].rows

    def test_foreign_keys_bounded_by_parents(self):
        specs = {spec.name: spec for spec in tpch_lite_specs(scale=0.02)}
        assert (
            specs["lineitem"].columns["l_order"].distinct
            <= specs["orders"].rows
        )
        assert specs["customer"].columns["c_nation"].distinct <= 25

    def test_database_loads_and_analyzes(self, tpch_db):
        assert tpch_db.catalog.stats("lineitem").row_count == 12000
        assert tpch_db.catalog.column_stats("region", "r_id").distinct == 5


class TestQueries:
    def test_q3_parses(self):
        query = q3_customer_orders(date_threshold=100)
        assert query.tables == ("customer", "orders", "lineitem")
        assert len(query.join_predicates) == 2
        assert len(query.constant_predicates) == 1

    def test_q5_has_region_constant(self):
        query = q5_regional(region_id=2)
        constants = query.constant_predicates
        assert len(constants) == 1
        assert constants[0].constant == 2

    def test_full_join_covers_six_tables(self):
        assert len(q_full_join().tables) == 6


class TestEstimationAccuracy:
    """ELS should be essentially exact on this FK-uniform schema."""

    @pytest.mark.parametrize(
        "query_factory",
        [q3_customer_orders, q9_parts_suppliers, q5_regional, q_full_join],
        ids=["q3", "q9", "q5", "full"],
    )
    def test_els_nearly_exact(self, tpch_db, query_factory):
        query = query_factory()
        truth = true_join_size(query, tpch_db)
        estimator = JoinSizeEstimator(query, tpch_db.catalog, ELS)
        estimate = estimator.estimate(list(query.tables))
        assert estimate == pytest.approx(truth, rel=0.1)

    def test_rule_m_underestimates_q5(self, tpch_db):
        """Q5's r_id = const enters the n_region equivalence class; Rule M
        multiplies the redundant constant-propagation effects."""
        query = q5_regional()
        truth = true_join_size(query, tpch_db)
        m_estimate = JoinSizeEstimator(query, tpch_db.catalog, SM).estimate(
            list(query.tables)
        )
        els_estimate = JoinSizeEstimator(query, tpch_db.catalog, ELS).estimate(
            list(query.tables)
        )
        assert m_estimate < truth * 0.5
        assert els_estimate == pytest.approx(truth, rel=0.1)

    def test_optimized_plans_return_truth(self, tpch_db):
        optimizer = Optimizer(tpch_db.catalog)
        executor = Executor(tpch_db)
        for factory in (q3_customer_orders, q9_parts_suppliers, q5_regional):
            query = factory()
            result = optimizer.optimize(query, ELS)
            run = executor.count(result.plan)
            assert run.count == true_join_size(query, tpch_db)
