"""Differential tests: the row, columnar, and parallel engines must agree.

For every workload family the repo generates (chain, star, clique, cycle,
snowflake) and for the TPC-H-lite queries, all three engines run the same
reference plan and must produce

* identical output row **multisets** (full materialization, no projection),
* identical ``COUNT(*)`` results,
* identical ``ExecutionMetrics.total_rows_out``, and
* identical per-operator statistics — label, rows in/out, comparisons,
  simulated pages — operator by operator.

The last point is the strongest guarantee: it proves the columnar engine
does the *same logical work* (including hash-join fallbacks through the
bridges), so the benchmark's speedup is pure execution efficiency.
"""

import random

import pytest

from repro.analysis import build_reference_plan
from repro.execution import Executor
from repro.workloads import (
    build_database,
    chain_workload,
    clique_workload,
    cycle_workload,
    load_tpch_lite,
    snowflake_workload,
    star_workload,
)
from repro.workloads.tpch_lite import (
    q3_customer_orders,
    q5_regional,
    q9_parts_suppliers,
    q_full_join,
)


def _operator_stats(metrics):
    return [
        (s.label, s.rows_in, s.rows_out, s.comparisons, s.pages_read)
        for s in metrics.operators
    ]


def assert_engines_agree(query, database):
    plan = build_reference_plan(query, database)
    row = Executor(database, engine="row").execute(plan)
    columnar = Executor(database, engine="columnar").execute(plan)
    parallel = Executor(
        database, engine="parallel", morsel_workers=2
    ).execute(plan)
    assert sorted(row.rows) == sorted(columnar.rows)
    assert sorted(row.rows) == sorted(parallel.rows)
    assert row.count == columnar.count == parallel.count
    assert (
        row.metrics.total_rows_out
        == columnar.metrics.total_rows_out
        == parallel.metrics.total_rows_out
    )
    assert _operator_stats(row.metrics) == _operator_stats(columnar.metrics)
    assert _operator_stats(row.metrics) == _operator_stats(parallel.metrics)

    row_count = Executor(database, engine="row").count(plan)
    columnar_count = Executor(database, engine="columnar").count(plan)
    parallel_count = Executor(
        database, engine="parallel", morsel_workers=2
    ).count(plan)
    assert (
        row_count.count
        == columnar_count.count
        == parallel_count.count
        == row.count
    )
    return row.count


class TestGeneratedWorkloadFamilies:
    @pytest.mark.parametrize("trial", range(4))
    def test_chain(self, trial):
        workload = chain_workload(
            4, random.Random(trial), local_predicate_probability=0.5
        )
        database = build_database(workload.specs, seed=trial)
        assert_engines_agree(workload.query, database)

    @pytest.mark.parametrize("trial", range(3))
    def test_star(self, trial):
        workload = star_workload(3, random.Random(10 + trial))
        database = build_database(workload.specs, seed=trial)
        assert_engines_agree(workload.query, database)

    @pytest.mark.parametrize("trial", range(3))
    def test_clique(self, trial):
        workload = clique_workload(4, random.Random(20 + trial))
        database = build_database(workload.specs, seed=trial)
        assert_engines_agree(workload.query, database)

    def test_cycle(self):
        workload = cycle_workload(4, random.Random(30))
        database = build_database(workload.specs, seed=30)
        assert_engines_agree(workload.query, database)

    def test_snowflake(self):
        workload = snowflake_workload(2, 1, random.Random(40))
        database = build_database(workload.specs, seed=40)
        assert_engines_agree(workload.query, database)

    def test_skewed_chain(self):
        """Zipf join columns: heavy hash-bucket collisions on both engines."""
        workload = chain_workload(3, random.Random(50), skew=1.2)
        database = build_database(workload.specs, seed=50)
        assert_engines_agree(workload.query, database)


class TestTpchLite:
    @pytest.fixture(scope="class")
    def tpch(self):
        return load_tpch_lite(scale=0.05, seed=7)

    def test_q3(self, tpch):
        assert assert_engines_agree(q3_customer_orders(), tpch) > 0

    def test_q9(self, tpch):
        assert assert_engines_agree(q9_parts_suppliers(), tpch) > 0

    def test_q5(self, tpch):
        # r_id = <const> joins through a constant-filtered region table; the
        # single-row side exercises the build-on-smaller-side path.
        assert_engines_agree(q5_regional(), tpch)

    def test_full_join(self, tpch):
        assert_engines_agree(q_full_join(), tpch)


class TestNonEquiFallback:
    def test_theta_join_falls_back_to_row_operators(self):
        """A pure inequality join has no hash key: the columnar engine must
        route it through the row-engine bridge and still match exactly."""
        from repro.sql import parse_query
        from repro.workloads import ColumnSpec, TableSpec

        specs = (
            TableSpec("A", 60, {"x": ColumnSpec(distinct=30)}),
            TableSpec("B", 40, {"y": ColumnSpec(distinct=20)}),
        )
        database = build_database(specs, seed=3)
        query = parse_query(
            "SELECT COUNT(*) FROM A, B WHERE A.x < B.y",
            schemas={"A": ("x",), "B": ("y",)},
        )
        assert_engines_agree(query, database)

    def test_equi_join_with_residual(self):
        """Equality key plus an inequality residual on the same pair."""
        from repro.sql import parse_query
        from repro.workloads import ColumnSpec, TableSpec

        specs = (
            TableSpec(
                "A", 80, {"k": ColumnSpec(distinct=20), "v": ColumnSpec(distinct=40)}
            ),
            TableSpec(
                "B", 70, {"k": ColumnSpec(distinct=25), "w": ColumnSpec(distinct=35)}
            ),
        )
        database = build_database(specs, seed=4)
        query = parse_query(
            "SELECT COUNT(*) FROM A, B WHERE A.k = B.k AND A.v < B.w",
            schemas={"A": ("k", "v"), "B": ("k", "w")},
        )
        assert_engines_agree(query, database)
