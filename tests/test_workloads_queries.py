"""Random query generator tests: chains, stars, cliques."""

import random

import pytest

from repro.errors import WorkloadError
from repro.workloads import chain_workload, clique_workload, star_workload


class TestChain:
    def test_shape(self, rng):
        workload = chain_workload(4, rng)
        assert workload.tables == ("T1", "T2", "T3", "T4")
        joins = [p for p in workload.query.predicates if p.is_join]
        assert len(joins) == 3

    def test_chain_is_connected_in_order(self, rng):
        workload = chain_workload(5, rng)
        for i, predicate in enumerate(workload.query.join_predicates):
            assert predicate.tables == frozenset({f"T{i+1}", f"T{i+2}"})

    def test_local_predicates_optional(self, rng):
        no_locals = chain_workload(3, rng, local_predicate_probability=0.0)
        assert not no_locals.query.local_predicates
        with_locals = chain_workload(3, random.Random(0), local_predicate_probability=1.0)
        assert len(with_locals.query.local_predicates) == 3

    def test_distinct_bounded_by_rows(self, rng):
        for _ in range(20):
            workload = chain_workload(3, rng)
            for spec in workload.specs:
                assert spec.columns["c"].distinct <= spec.rows

    def test_minimum_tables(self, rng):
        with pytest.raises(WorkloadError):
            chain_workload(1, rng)

    def test_skew_option(self, rng):
        from repro.workloads import Distribution

        workload = chain_workload(3, rng, skew=1.5)
        for spec in workload.specs:
            assert spec.columns["c"].distribution is Distribution.ZIPF

    def test_deterministic_under_seed(self):
        a = chain_workload(4, random.Random(42))
        b = chain_workload(4, random.Random(42))
        assert a.specs == b.specs
        assert a.query.predicates == b.query.predicates


class TestStar:
    def test_shape(self, rng):
        workload = star_workload(3, rng)
        assert workload.tables == ("F", "D1", "D2", "D3")
        assert len(workload.query.join_predicates) == 3

    def test_every_join_touches_fact(self, rng):
        workload = star_workload(4, rng)
        for predicate in workload.query.join_predicates:
            assert "F" in predicate.tables

    def test_dimensions_are_keys(self, rng):
        workload = star_workload(2, rng)
        for spec in workload.specs:
            if spec.name.startswith("D"):
                assert spec.columns["k"].distinct == spec.rows

    def test_minimum_dimensions(self, rng):
        with pytest.raises(WorkloadError):
            star_workload(0, rng)


class TestClique:
    def test_all_pairs_present(self, rng):
        workload = clique_workload(4, rng)
        joins = workload.query.join_predicates
        assert len(joins) == 6  # C(4, 2)

    def test_same_specs_as_chain(self):
        """Clique over the same seed draws the same tables as the chain."""
        a = clique_workload(3, random.Random(5))
        assert len(a.specs) == 3
        assert all(spec.columns["c"].distinct <= spec.rows for spec in a.specs)
