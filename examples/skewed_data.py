"""Skewed data: where the paper's assumptions help and where they break.

Two demonstrations on Zipf-distributed columns:

1. **Local predicates** (the part the paper already handles): Section 5
   notes that distribution statistics can replace uniformity for local
   predicate selectivities.  We filter a skewed column with and without an
   equi-depth histogram + most-common-values list in the catalog and
   compare both estimates with the executed truth.

2. **Join predicates** (the paper's future work): join-column skew breaks
   Equation 2 for every rule; we sweep the Zipf exponent and report the
   q-error growth of ELS on a chain query.

Run:  python examples/skewed_data.py
"""

import random

from repro import ELS, JoinSizeEstimator, parse_query
from repro.analysis import (
    AsciiTable,
    evaluate_workload,
    q_error,
    summarize_errors,
    true_join_size,
)
from repro.catalog import HistogramKind
from repro.storage import Database
from repro.catalog.schema import TableSchema
from repro.workloads import chain_workload, zipf_column

import numpy as np


def local_predicate_demo() -> None:
    rng = np.random.default_rng(7)
    values = zipf_column(20000, 1000, skew=1.3, rng=rng)
    database = Database()
    database.load_columns(TableSchema.of("R", "x"), {"x": values})

    query = parse_query("SELECT COUNT(*) FROM R WHERE R.x <= 3")
    truth = sum(1 for v in values if v <= 3)

    table = AsciiTable(
        ["Catalog statistics", "Estimated rows", "True rows"],
        title="Local predicate 'x <= 3' on a Zipf(1.3) column (hot values are small ranks)",
    )
    for label, histogram, mcv_k in [
        ("cardinalities only", HistogramKind.NONE, 0),
        ("+ equi-depth histogram", HistogramKind.EQUI_DEPTH, 0),
        ("+ histogram + MCVs", HistogramKind.EQUI_DEPTH, 10),
    ]:
        database.analyze("R", histogram=histogram, buckets=20, mcv_k=mcv_k)
        estimator = JoinSizeEstimator(query, database.catalog, ELS)
        estimate = estimator.base_rows("R")
        table.add_row(label, round(estimate, 1), truth)
    print(table.render())
    print()


def join_skew_demo() -> None:
    table = AsciiTable(
        ["Zipf exponent", "ELS q-error (gmean over 8 chains)"],
        title="Join-column skew vs ELS accuracy (uniformity is a join-side assumption)",
    )
    for skew in (0.0, 0.5, 1.0, 1.5):
        errors = []
        rng = random.Random(31)
        for trial in range(8):
            workload = chain_workload(
                3, rng, min_rows=200, max_rows=1500, skew=skew if skew else None
            )
            records = evaluate_workload(workload, seed=300 + trial)
            els = next(r for r in records if r.algorithm == "ELS")
            errors.append(els.q_error)
        table.add_row(skew, summarize_errors(errors).geometric_mean)
    print(table.render())
    print()
    print(
        "The paper's Section 9: relaxing uniformity for join predicates\n"
        "(e.g. Zipfian columns) is future work — the degradation above is\n"
        "the quantified cost of that assumption."
    )


if __name__ == "__main__":
    local_predicate_demo()
    join_skew_demo()
