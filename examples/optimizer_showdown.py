"""The Section 8 experiment, end to end, on your machine.

Generates the paper's S (small), M (medium), B (big), G (giant) tables,
optimizes ``SELECT COUNT(*) ... WHERE s = m AND m = b AND b = g AND s < 100``
under the four algorithm setups of the paper's results table, executes each
chosen plan on the real data, and prints the table: join order, per-join
estimated sizes, true count, and measured cost.

Run:  python examples/optimizer_showdown.py [scale]

``scale`` (default 1.0) scales all table sizes; 1.0 reproduces the paper's
cardinalities (||G|| = 100000).
"""

import sys

from repro import ELS, SM, SSS, Executor, Optimizer
from repro.analysis import AsciiTable
from repro.workloads import load_smbg_database, smbg_query


SETUPS = [
    ("Orig.", "SM", SM, False),
    ("Orig. + PTC", "SM", SM, True),
    ("Orig. + PTC", "SSS", SSS, True),
    ("Orig.", "ELS", ELS, True),
]


def main(scale: float = 1.0) -> None:
    print(f"Generating S/M/B/G at scale {scale} ...")
    database = load_smbg_database(scale=scale, seed=42)
    query = smbg_query(threshold=max(2, int(100 * scale)))
    print(f"Query: {query}")
    print()

    optimizer = Optimizer(database.catalog)
    executor = Executor(database)

    table = AsciiTable(
        ["Query", "Algorithm", "Join Order", "Estimated Result Sizes", "True", "Time (s)", "Pages"],
        title="Section 8 experiment (paper's Table, regenerated)",
    )
    plans = {}
    for query_label, name, config, closure in SETUPS:
        result = optimizer.optimize(query, config, apply_closure=closure)
        run = executor.count(result.plan)
        plans[name, closure] = result
        estimates = "(" + ", ".join(f"{x:.3g}" for x in result.intermediate_sizes) + ")"
        table.add_row(
            query_label,
            name,
            " >< ".join(result.join_order),
            estimates,
            run.count,
            f"{run.wall_seconds:.3f}",
            f"{run.metrics.total_pages_read:.0f}",
        )
    print(table.render())
    print()
    print("The ELS plan, in full:")
    print(plans["ELS", True].explain())


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 1.0)
