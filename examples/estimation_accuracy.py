"""Estimation accuracy on random workloads, with executed ground truth.

Generates random chain and star join queries, loads their synthetic data,
executes each query for its true result size, and scores every estimation
algorithm by q-error.  This is the experiment a modern reader wants next to
the paper's single worked query: *how often* and *by how much* do the rules
disagree?

Run:  python examples/estimation_accuracy.py [trials]
"""

import random
import sys

from repro.analysis import (
    PAPER_ALGORITHMS,
    AsciiTable,
    evaluate_workload,
    summarize_errors,
)
from repro.workloads import chain_workload, star_workload


def run_family(name, factory, trials, seed_base):
    errors = {spec.name: [] for spec in PAPER_ALGORITHMS}
    rng = random.Random(seed_base)
    for trial in range(trials):
        workload = factory(rng)
        for record in evaluate_workload(workload, seed=seed_base + trial):
            errors[record.algorithm].append(record.q_error)
    table = AsciiTable(
        ["Algorithm", "q-error gmean", "median", "p90", "max"],
        title=f"{name} ({trials} random queries; truth = executed counts)",
    )
    for algorithm, values in errors.items():
        summary = summarize_errors(values)
        table.add_row(
            algorithm,
            summary.geometric_mean,
            summary.median,
            summary.p90,
            summary.maximum,
        )
    print(table.render())
    print()


def main(trials: int = 15) -> None:
    run_family(
        "4-table chains with local predicates",
        lambda rng: chain_workload(
            4, rng, min_rows=100, max_rows=1500, local_predicate_probability=0.4
        ),
        trials,
        seed_base=100,
    )
    run_family(
        "3-dimension star joins",
        lambda rng: star_workload(3, rng),
        trials,
        seed_base=200,
    )
    print(
        "Chains put every join column in ONE equivalence class: Rule M\n"
        "multiplies redundant selectivities and collapses, Rule SS picks the\n"
        "wrong one, Rule LS tracks the closed form.  Stars have one class per\n"
        "dimension, so the three rules coincide there — the gap is exactly\n"
        "the paper's dependent-predicates story."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 15)
