"""A data-warehouse scenario: snowflake schema, multi-join queries.

The paper's introduction motivates join-size estimation with user queries
"involving multiple joins" whose execution cost "can vary dramatically
depending on the query evaluation plan".  The canonical modern instance is
a warehouse snowflake: a fact table, dimensions, and sub-dimensions, with
6+ way joins in every report query.

This example generates a synthetic sales snowflake, runs the four
estimation algorithms through the optimizer, executes the chosen plans,
and also contrasts the enumerator families (exact DP vs bushy DP vs the
randomized searches) on the same query.

Run:  python examples/warehouse_snowflake.py
"""

import random

from repro import ELS, SM, SSS, Executor, Optimizer
from repro.analysis import AsciiTable, true_join_size
from repro.workloads import build_database, snowflake_workload


def main() -> None:
    workload = snowflake_workload(
        num_dimensions=3,
        num_subdimensions=1,
        rng=random.Random(2024),
        fact_rows_range=(8000, 8000),
        dim_rows_range=(300, 600),
        subdim_rows_range=(50, 120),
    )
    print(f"Schema: {', '.join(workload.tables)}")
    print(f"Query:  {workload.query}")
    print()

    database = build_database(workload.specs, seed=2024)
    truth = true_join_size(workload.query, database)
    executor = Executor(database)

    table = AsciiTable(
        ["Algorithm", "Join order", "Final estimate", "True size", "Time (s)"],
        title="Estimation algorithms on the 7-way snowflake join",
    )
    optimizer = Optimizer(database.catalog)
    for name, config, closure in [
        ("SM (no PTC)", SM, False),
        ("SM + PTC", SM, True),
        ("SSS + PTC", SSS, True),
        ("ELS", ELS, True),
    ]:
        result = optimizer.optimize(workload.query, config, apply_closure=closure)
        run = executor.count(result.plan)
        table.add_row(
            name,
            " ".join(result.join_order),
            result.estimated_rows,
            truth,
            f"{run.wall_seconds:.3f}",
        )
    print(table.render())
    print()

    enum_table = AsciiTable(
        ["Enumerator", "Join order", "Estimated cost", "Time (s)"],
        title="Enumerator families under ELS estimates (same query)",
    )
    for enumerator in ("dp", "dp-bushy", "greedy", "random", "annealing"):
        optimizer = Optimizer(database.catalog, enumerator=enumerator, seed=5)
        result = optimizer.optimize(workload.query, ELS)
        run = executor.count(result.plan)
        enum_table.add_row(
            enumerator,
            " ".join(result.join_order),
            result.estimated_cost,
            f"{run.wall_seconds:.3f}",
        )
    print(enum_table.render())
    print()
    print(
        "Each fact->dimension->subdimension path forms its own pair of\n"
        "equivalence classes, so this is multi-class estimation at depth:\n"
        "the rules only disagree within a class, which keeps the baselines\n"
        "closer here than on single-class chains — the snowflake shows the\n"
        "regime where the paper's problem is mild, chains show where it\n"
        "is fatal (see examples/estimation_accuracy.py)."
    )


if __name__ == "__main__":
    main()
