"""EXPLAIN ANALYZE: watch estimates meet reality, node by node.

Optimizes the paper's S/M/B/G query under Algorithm ELS and under Rule M,
executes both plans, and prints per-node estimated-vs-actual row counts.
The Rule M plan's join nodes show the collapse to ~0 estimated rows that
misleads the optimizer; ELS's nodes track the truth.

Run:  python examples/explain_analyze_demo.py
"""

from repro import ELS, SM, Optimizer
from repro.analysis import explain_analyze, render_explain_analyze
from repro.workloads import load_smbg_database, smbg_query


def main() -> None:
    database = load_smbg_database(scale=0.2, seed=11)
    query = smbg_query(threshold=20)
    optimizer = Optimizer(database.catalog)

    for name, config in [("Algorithm ELS", ELS), ("Rule M (SM + PTC)", SM)]:
        result = optimizer.optimize(query, config)
        comparisons, run = explain_analyze(result.plan, database)
        print(f"=== {name}: join order {' >< '.join(result.join_order)} "
              f"(true count {run.count}) ===")
        print(render_explain_analyze(comparisons))
        print()

    print(
        "Reading the tables: every scan is filtered to the same ~19 rows by\n"
        "the closure-implied local predicates, so the difference is entirely\n"
        "in the join nodes — Rule M multiplies the selectivities of all six\n"
        "(mutually dependent) join predicates and its estimates fall to ~0,\n"
        "while ELS keeps one selectivity per equivalence class and stays\n"
        "within rounding of the executed row counts."
    )


if __name__ == "__main__":
    main()
