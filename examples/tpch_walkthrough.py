"""TPC-H-lite walkthrough: the full library on a recognizable schema.

Loads the miniature warehouse (region/nation/supplier/customer/part/
orders/lineitem), then for each canonical query: shows the transitive
closure, the per-algorithm estimates against the executed truth, and the
optimizer's chosen plan with EXPLAIN ANALYZE output.

Run:  python examples/tpch_walkthrough.py [scale]
"""

import sys

from repro import ELS, SM, Optimizer
from repro.analysis import (
    AsciiTable,
    explain_analyze,
    render_explain_analyze,
    true_join_size,
)
from repro.core import JoinSizeEstimator, SSS, close_query
from repro.workloads import (
    load_tpch_lite,
    q3_customer_orders,
    q5_regional,
    q9_parts_suppliers,
    q_full_join,
)


def main(scale: float = 0.05) -> None:
    print(f"Loading TPC-H-lite at scale {scale} ...")
    database = load_tpch_lite(scale=scale, seed=7)
    for name in database.table_names():
        print(f"  {name}: {database.true_count(name)} rows")
    print()

    queries = {
        "Q3": q3_customer_orders(),
        "Q9": q9_parts_suppliers(),
        "Q5": q5_regional(),
        "Full": q_full_join(),
    }

    table = AsciiTable(
        ["Query", "True size", "SM", "SSS", "ELS"],
        title="Estimates vs executed truth",
    )
    for label, query in queries.items():
        truth = true_join_size(query, database)
        estimates = [
            JoinSizeEstimator(query, database.catalog, config).estimate(
                list(query.tables)
            )
            for config in (SM, SSS, ELS)
        ]
        table.add_row(label, truth, *estimates)
    print(table.render())
    print()

    # Q5's closure: the region constant propagates into the class.
    closed, result = close_query(queries["Q5"])
    print("Q5 after transitive closure:")
    for implied in result.implied:
        print(f"  implied: {implied}")
    print()

    # The optimizer + EXPLAIN ANALYZE on Q5, where Rule M goes wrong.
    optimizer = Optimizer(database.catalog)
    for label, config in [("ELS", ELS), ("Rule M", SM)]:
        chosen = optimizer.optimize(queries["Q5"], config)
        comparisons, run = explain_analyze(chosen.plan, database)
        print(f"Q5 under {label}: order {' >< '.join(chosen.join_order)} "
              f"(true count {run.count})")
        print(render_explain_analyze(comparisons))
        print()


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
