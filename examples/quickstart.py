"""Quickstart: estimate join result sizes the way the paper does.

Walks the paper's running example (Examples 1a/1b/2/3) through the public
API: build a statistics catalog, parse a conjunctive query, run predicate
transitive closure, and compare the three selectivity-combination rules.

Run:  python examples/quickstart.py
"""

from repro import ELS, SM, SSS, Catalog, JoinSizeEstimator, parse_query


def main() -> None:
    # The statistics of Example 1b: ||R1||=100, ||R2||=1000, ||R3||=1000,
    # d_x=10, d_y=100, d_z=1000.
    catalog = Catalog.from_stats(
        {
            "R1": (100, {"x": 10}),
            "R2": (1000, {"y": 100}),
            "R3": (1000, {"z": 1000}),
        }
    )

    # Example 1a's query.  Only the WHERE clause matters for estimation.
    query = parse_query(
        "SELECT * FROM R1, R2, R3 WHERE R1.x = R2.y AND R2.y = R3.z"
    )

    # Algorithm ELS runs its preliminary phase in the constructor:
    # duplicate removal, transitive closure, equivalence classes, local
    # predicate folding, and per-predicate join selectivities.
    estimator = JoinSizeEstimator(query, catalog, ELS)

    print("Query after transitive closure:")
    print(f"  {estimator.query}")
    print()
    print("Join predicate selectivities (Equation 2, S_J = 1/max(d1, d2)):")
    for prepared in estimator.prepared_predicates:
        print(f"  {prepared.predicate}:  {prepared.selectivity:.4g}")
    print()

    # Incremental estimation (step 6).  The true size is 1000 after every
    # subset of joins.
    order = ["R2", "R3", "R1"]
    print(f"Incremental estimation along {' >< '.join(order)}:")
    for name, config in [("Rule M ", SM), ("Rule SS", SSS), ("Rule LS", ELS)]:
        rule_estimator = JoinSizeEstimator(query, catalog, config)
        result = rule_estimator.estimate_order(order)
        sizes = ", ".join(f"{size:g}" for size in result.intermediate_sizes)
        print(f"  {name}: intermediate sizes ({sizes})   [true: 1000, 1000]")
    print()

    # Rule LS agrees with the closed form of Equation 3 for every order.
    print(f"Equation 3 closed form: {estimator.closed_form():g}")
    print("Rule LS estimates per join order:")
    import itertools

    for order in itertools.permutations(["R1", "R2", "R3"]):
        print(f"  {' >< '.join(order)}: {estimator.estimate(list(order)):g}")


if __name__ == "__main__":
    main()
