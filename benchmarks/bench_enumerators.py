"""Experiment X-ENUM — the enumerator families the paper's estimates feed.

"Incremental estimation is used, for example, in the dynamic programming
algorithm [13], the AB algorithm [15] and randomized algorithms [14, 5]."

This bench runs the implemented members of those families — exact DP
(left-deep and bushy), the greedy heuristic, iterative improvement, and
simulated annealing — over random chain queries, comparing plan cost
against the DP optimum and measuring enumeration time as the query grows.

Asserted shape: every enumerator returns a complete plan; greedy and the
randomized searches stay within a small factor of the DP optimum on
8-table chains; DP time grows much faster than greedy time with the
relation count.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.analysis import AsciiTable
from repro.catalog import Catalog
from repro.core import ELS, JoinSizeEstimator
from repro.optimizer import (
    CostModel,
    enumerate_annealing,
    enumerate_dp,
    enumerate_dp_bushy,
    enumerate_greedy,
    enumerate_iterative_improvement,
    leaf_order,
)
from repro.workloads import chain_workload


def setup_chain(num_tables, seed, max_rows=20000):
    workload = chain_workload(
        num_tables, random.Random(seed), min_rows=100, max_rows=max_rows
    )
    entries = {
        spec.name: (spec.rows, {c: cs.distinct for c, cs in spec.columns.items()})
        for spec in workload.specs
    }
    catalog = Catalog.from_stats(entries)
    estimator = JoinSizeEstimator(workload.query, catalog, ELS)
    widths = {spec.name: 4 for spec in workload.specs}
    rows = {spec.name: spec.rows for spec in workload.specs}
    return estimator, widths, rows


ENUMERATORS = {
    "DP (left-deep)": enumerate_dp,
    "DP (bushy)": enumerate_dp_bushy,
    "greedy": enumerate_greedy,
    "iterative improvement": lambda e, m, w, r, **kw: enumerate_iterative_improvement(
        e, m, w, r, seed=13, restarts=6
    ),
    "annealing": lambda e, m, w, r, **kw: enumerate_annealing(e, m, w, r, seed=13),
}


@pytest.fixture(scope="module")
def quality_table():
    model = CostModel()
    results = {}
    table = AsciiTable(
        ["Enumerator", "Mean cost / DP optimum", "Mean time (ms)"],
        title="Enumerator plan quality on 5 random 8-table chains",
    )
    trials = [setup_chain(8, seed) for seed in range(5)]
    for name, enumerate_fn in ENUMERATORS.items():
        ratios = []
        times = []
        for estimator, widths, rows in trials:
            baseline = enumerate_dp(estimator, model, widths, rows)
            started = time.perf_counter()
            plan = enumerate_fn(estimator, model, widths, rows)
            times.append((time.perf_counter() - started) * 1000)
            ratios.append(plan.estimated_cost / baseline.estimated_cost)
        results[name] = (sum(ratios) / len(ratios), sum(times) / len(times))
        table.add_row(name, results[name][0], results[name][1])
    print("\n" + table.render() + "\n")
    return results


def test_all_enumerators_complete(benchmark, quality_table):
    estimator, widths, rows = setup_chain(6, seed=42)
    model = CostModel()

    def run_all():
        plans = [fn(estimator, model, widths, rows) for fn in ENUMERATORS.values()]
        return [len(leaf_order(p)) for p in plans]

    counts = benchmark.pedantic(run_all, rounds=2, iterations=1)
    assert counts == [6] * len(ENUMERATORS)


def test_heuristics_near_dp_optimum(benchmark, quality_table):
    benchmark(lambda: None)
    assert quality_table["DP (bushy)"][0] <= 1.0 + 1e-9
    assert quality_table["greedy"][0] < 2.0
    assert quality_table["iterative improvement"][0] < 1.5
    assert quality_table["annealing"][0] < 2.0


def test_dp_scales_worse_than_greedy(benchmark):
    model = CostModel()
    estimator, widths, rows = setup_chain(12, seed=9, max_rows=3000)

    def both():
        t0 = time.perf_counter()
        enumerate_greedy(estimator, model, widths, rows)
        greedy_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        enumerate_dp(estimator, model, widths, rows)
        dp_time = time.perf_counter() - t0
        return greedy_time, dp_time

    greedy_time, dp_time = benchmark.pedantic(both, rounds=2, iterations=1)
    assert dp_time > greedy_time * 3
