"""Experiment E-URN — Section 5's urn-model numeric example, plus a
data-backed validation the paper could not run.

Paper numbers: d_x = 10000, ||R|| = 100000, ||R||' = 50000 ->
urn estimate d_x' = 9933; the proportional estimate gives 5000;
with ||R||' = ||R||, the urn estimate is 10000.

The bench additionally *measures* the true surviving distinct count on
generated data (select 50000 of 100000 rows at random and count distinct
x-values) and shows the urn model lands within a fraction of a percent
while proportional scaling is off by ~2x.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import AsciiTable
from repro.core import proportional_distinct, urn_distinct
from repro.workloads import uniform_column

DISTINCT = 10000
TOTAL_ROWS = 100000
SELECTED = 50000


def true_surviving_distinct(seed=0):
    rng = np.random.default_rng(seed)
    values = np.asarray(uniform_column(TOTAL_ROWS, DISTINCT, rng))
    chosen = rng.choice(TOTAL_ROWS, size=SELECTED, replace=False)
    return len(set(values[chosen].tolist()))


@pytest.fixture(scope="module")
def report():
    urn = urn_distinct(DISTINCT, SELECTED)
    proportional = proportional_distinct(DISTINCT, SELECTED, TOTAL_ROWS)
    truth = true_surviving_distinct()
    table = AsciiTable(
        ["Estimator", "d_x' estimate", "Paper value", "True (measured)"],
        title="Section 5 urn model: distinct values after selecting 50000 of 100000 rows",
    )
    table.add_row("urn model", urn, 9933, truth)
    table.add_row("proportional", proportional, 5000, truth)
    table.add_row("urn at ||R||' = ||R||", urn_distinct(DISTINCT, TOTAL_ROWS), 10000, DISTINCT)
    print("\n" + table.render() + "\n")
    return urn, proportional, truth


def test_urn_model_paper_numbers(benchmark, report):
    urn, proportional, truth = report
    value = benchmark(urn_distinct, DISTINCT, SELECTED)
    assert value == 9933
    assert proportional == 5000.0
    assert urn_distinct(DISTINCT, TOTAL_ROWS) == 10000


def test_urn_model_matches_measured_truth(benchmark, report):
    """The urn expectation should sit within 1% of the measured distinct
    count; the proportional estimate misses by roughly a factor of two."""
    urn, proportional, _ = report
    truth = benchmark.pedantic(true_surviving_distinct, rounds=2, iterations=1)
    assert urn == pytest.approx(truth, rel=0.01)
    assert abs(proportional - truth) > truth * 0.3
