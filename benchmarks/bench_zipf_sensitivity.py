"""Experiment X-ZIPF — sensitivity to skewed (Zipf) join columns.

Section 9 (future work): "Relaxing the [uniformity] assumption in the case
of join predicates would enable query optimizers to account for important
data distributions such as the Zipfian distribution [17, 3]."

All of the paper's machinery assumes uniform join columns.  This bench
quantifies what that costs: chains are generated with join-column skew
swept from 0 (uniform) upward, each query is executed for ground truth,
and per-skew q-errors are reported for every algorithm.

Asserted shape: every algorithm degrades as skew grows (the assumption,
not the rule, is what breaks), ELS remains the best of the family at every
skew level, and at zero skew ELS is near-exact.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import (
    PAPER_ALGORITHMS,
    AsciiTable,
    evaluate_workload,
    summarize_errors,
)
from repro.workloads import chain_workload

SKEWS = (0.0, 0.5, 1.0, 1.5)
TRIALS = 8


def errors_at_skew(skew, trials=TRIALS, seed_base=60):
    errors = {spec.name: [] for spec in PAPER_ALGORITHMS}
    rng = random.Random(seed_base)
    for trial in range(trials):
        workload = chain_workload(
            3,
            rng,
            min_rows=200,
            max_rows=1500,
            skew=skew if skew > 0 else None,
        )
        records = evaluate_workload(workload, seed=seed_base + trial)
        for record in records:
            errors[record.algorithm].append(record.q_error)
    return errors


@pytest.fixture(scope="module")
def skew_table():
    results = {}
    table = AsciiTable(
        ["Skew (theta)"] + [spec.name for spec in PAPER_ALGORITHMS],
        title="q-error (gmean) vs join-column Zipf skew, 3-table chains",
    )
    for skew in SKEWS:
        errors = errors_at_skew(skew)
        gmeans = {
            name: summarize_errors(values).geometric_mean
            for name, values in errors.items()
        }
        results[skew] = gmeans
        table.add_row(skew, *[gmeans[spec.name] for spec in PAPER_ALGORITHMS])
    print("\n" + table.render() + "\n")
    return results


def test_uniform_case_near_exact(benchmark, skew_table):
    benchmark.pedantic(
        errors_at_skew, kwargs={"skew": 0.0, "trials": 2}, rounds=2, iterations=1
    )
    assert skew_table[0.0]["ELS"] < 1.6


def test_skew_degrades_all_algorithms(benchmark, skew_table):
    benchmark(lambda: None)
    for name in ("ELS", "SSS + PTC"):
        assert skew_table[SKEWS[-1]][name] > skew_table[0.0][name]


def test_els_remains_best_under_skew(benchmark, skew_table):
    benchmark(lambda: None)
    for skew in SKEWS:
        gmeans = skew_table[skew]
        assert gmeans["ELS"] <= gmeans["SM + PTC"] * 1.05
        assert gmeans["ELS"] <= gmeans["SSS + PTC"] * 1.05
