"""Experiment X-BUSHY — left-deep versus bushy enumeration.

The paper's incremental framework is stated one-table-at-a-time (the shape
dynamic programming [13], AB [15], and the randomized algorithms [14, 5]
explore).  Our Rule LS implementation generalizes to set-to-set joins
(``JoinSizeEstimator.join_states``) with the same Equation 3 exactness, so
bushy trees can be enumerated without giving up correct cardinalities.

This bench compares the two enumerators on random chains: bushy optima are
never costlier than left-deep optima (left-deep trees are a subset of bushy
trees), agreed cardinalities match the closed form in both shapes, and
enumeration times show the O(3^n)-vs-O(2^n * n) gap.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import AsciiTable
from repro.core import ELS, JoinSizeEstimator
from repro.optimizer import CostModel, enumerate_dp, enumerate_dp_bushy
from repro.workloads import chain_workload
from repro.workloads.generator import TableSpec


def setup_from_workload(workload):
    from repro.catalog import Catalog

    entries = {
        spec.name: (spec.rows, {c: cs.distinct for c, cs in spec.columns.items()})
        for spec in workload.specs
    }
    catalog = Catalog.from_stats(entries)
    estimator = JoinSizeEstimator(workload.query, catalog, ELS)
    widths = {spec.name: 4 for spec in workload.specs}
    rows = {spec.name: spec.rows for spec in workload.specs}
    return estimator, widths, rows


@pytest.fixture(scope="module")
def comparison():
    rng = random.Random(9)
    rows = []
    for trial in range(8):
        workload = chain_workload(5, rng, min_rows=100, max_rows=50_000)
        estimator, widths, row_counts = setup_from_workload(workload)
        model = CostModel()
        left_deep = enumerate_dp(estimator, model, widths, row_counts)
        bushy = enumerate_dp_bushy(estimator, model, widths, row_counts)
        rows.append(
            {
                "trial": trial,
                "left_cost": left_deep.estimated_cost,
                "bushy_cost": bushy.estimated_cost,
                "left_rows": left_deep.estimated_rows,
                "bushy_rows": bushy.estimated_rows,
                "closed_form": estimator.closed_form(),
            }
        )
    table = AsciiTable(
        ["Trial", "Left-deep cost", "Bushy cost", "Bushy/LD", "Rows (Eq. 3)"],
        title="Left-deep vs bushy optima on random 5-table chains",
    )
    for row in rows:
        table.add_row(
            row["trial"],
            row["left_cost"],
            row["bushy_cost"],
            row["bushy_cost"] / row["left_cost"],
            row["closed_form"],
        )
    print("\n" + table.render() + "\n")
    return rows


def test_bushy_never_costlier(benchmark, comparison):
    benchmark(lambda: None)
    for row in comparison:
        assert row["bushy_cost"] <= row["left_cost"] * (1 + 1e-9)


def test_both_shapes_match_closed_form(benchmark, comparison):
    benchmark(lambda: None)
    for row in comparison:
        assert row["left_rows"] == pytest.approx(row["closed_form"], rel=1e-9)
        assert row["bushy_rows"] == pytest.approx(row["closed_form"], rel=1e-9)


def test_left_deep_enumeration_speed(benchmark):
    rng = random.Random(3)
    workload = chain_workload(7, rng, min_rows=100, max_rows=5000)
    estimator, widths, rows = setup_from_workload(workload)
    benchmark(enumerate_dp, estimator, CostModel(), widths, rows)


def test_bushy_enumeration_speed(benchmark):
    rng = random.Random(3)
    workload = chain_workload(7, rng, min_rows=100, max_rows=5000)
    estimator, widths, rows = setup_from_workload(workload)
    benchmark(enumerate_dp_bushy, estimator, CostModel(), widths, rows)
