"""Experiment E-REP — Section 3.3's representative-selectivity proposal.

"The problem with this proposal is that there is no certainty that a
correct value for this representative join selectivity exists that will
work in all cases.  In our example query, if the representative selectivity
is 0.01, the estimate for the final join result size will be 10000, which
is too high.  If the representative selectivity is 0.001, the estimate will
be 100, which is too low."

The bench sweeps representative values across the class's selectivity range
and asserts that *no* constant reproduces the correct 1000 for both the
(R2, R3, R1) order's final size and the (R2, R3) prefix — while Rule LS is
exact for every prefix of every order.
"""

from __future__ import annotations

import pytest

from repro.analysis import AsciiTable
from repro.core import ELS, EstimatorConfig, JoinSizeEstimator, SelectivityRule
from repro.workloads import example_1b_catalog, example_1b_query

SWEEP = [0.01, 0.005, 0.002, 0.001]
TRUE_FINAL = 1000.0
TRUE_PREFIX = 1000.0  # ||R2 >< R3||


def estimate_with_representative(value):
    config = EstimatorConfig(
        rule=SelectivityRule.REPRESENTATIVE, representative_selectivity=value
    )
    estimator = JoinSizeEstimator(example_1b_query(), example_1b_catalog(), config)
    result = estimator.estimate_order(["R2", "R3", "R1"])
    return result.intermediate_sizes  # (prefix size, final size)


@pytest.fixture(scope="module")
def sweep_rows():
    table = AsciiTable(
        ["Representative", "||R2 >< R3||", "Final", "Correct?"],
        title="Section 3.3 sweep: no constant representative works for all cases",
    )
    rows = {}
    for value in SWEEP:
        prefix, final = estimate_with_representative(value)
        correct = abs(prefix - TRUE_PREFIX) < 1 and abs(final - TRUE_FINAL) < 1
        rows[value] = (prefix, final, correct)
        table.add_row(value, prefix, final, "yes" if correct else "no")
    print("\n" + table.render() + "\n")
    return rows


def test_paper_sweep_endpoints(benchmark, sweep_rows):
    """The paper's two candidate values bracket the truth: 10000 and 100."""
    sizes = benchmark(estimate_with_representative, 0.01)
    assert sizes[-1] == pytest.approx(10000.0)
    assert sweep_rows[0.001][1] == pytest.approx(100.0)


def test_no_representative_is_correct_everywhere(benchmark, sweep_rows):
    benchmark(lambda: None)
    assert not any(correct for _, _, correct in sweep_rows.values())


def test_rule_ls_correct_for_all_prefixes(benchmark):
    """Rule LS needs no per-class constant: every prefix of every order is
    exact."""
    import itertools

    estimator = JoinSizeEstimator(example_1b_query(), example_1b_catalog(), ELS)

    def all_prefixes_exact():
        for order in itertools.permutations(["R1", "R2", "R3"]):
            result = estimator.estimate_order(list(order))
            final = result.rows
            if abs(final - TRUE_FINAL) > 1e-6:
                return False
        return True

    assert benchmark(all_prefixes_exact)
