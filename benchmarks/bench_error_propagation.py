"""Experiment X-ERR — error propagation with the number of joins.

The paper's introduction cites Ioannidis & Christodoulakis [4], who show
analytically that estimation errors in single-equivalence-class queries
propagate (multiplicatively) as joins accumulate.  Our chain workloads put
every join column into one class — the worst case for Rule M, which keeps
multiplying redundant selectivities.

The bench runs random chains (with local predicates), executes every prefix
for ground truth, and prints geometric-mean q-error per (algorithm, number
of joins).  Asserted shape: Rule M's error grows monotonically in the join
count and ends orders of magnitude above ELS's, whose error stays flat.
"""

from __future__ import annotations

import pytest

from repro.analysis import AsciiTable, run_error_propagation

MAX_TABLES = 6
TRIALS = 8


@pytest.fixture(scope="module")
def points():
    points = run_error_propagation(
        max_tables=MAX_TABLES,
        trials=TRIALS,
        seed=11,
        min_rows=100,
        max_rows=800,
        local_predicate_probability=0.3,
    )
    table = AsciiTable(
        ["Algorithm", "Joins", "q-error (gmean)", "q-error (p90)", "mean log10(est/true)"],
        title="Error propagation on random single-class chains (truth = executed counts)",
    )
    for point in points:
        table.add_row(
            point.algorithm,
            point.num_joins,
            point.q_errors.geometric_mean,
            point.q_errors.p90,
            point.mean_log10_ratio,
        )
    print("\n" + table.render() + "\n")
    return points


def by_algorithm(points, name):
    return sorted(
        (p for p in points if p.algorithm == name), key=lambda p: p.num_joins
    )


def test_error_propagation_run(benchmark, points):
    """Time a small propagation run; assert the full run's shape."""
    benchmark.pedantic(
        run_error_propagation,
        kwargs={"max_tables": 3, "trials": 2, "seed": 1},
        rounds=2,
        iterations=1,
    )
    m_curve = by_algorithm(points, "SM + PTC")
    els_curve = by_algorithm(points, "ELS")

    # Rule M's error grows with the number of joins...
    gmeans = [p.q_errors.geometric_mean for p in m_curve]
    assert gmeans[-1] > gmeans[0] * 10

    # ...and it always underestimates (negative log ratio).
    assert all(p.mean_log10_ratio < 0 for p in m_curve[1:])

    # ELS stays within a small constant factor at every depth.
    for point in els_curve:
        assert point.q_errors.geometric_mean < 5.0

    # At the deepest point, M is orders of magnitude worse than ELS.
    assert (
        m_curve[-1].q_errors.geometric_mean
        > els_curve[-1].q_errors.geometric_mean * 100
    )


def test_ss_sits_between_m_and_ls(benchmark, points):
    benchmark(lambda: None)
    m = by_algorithm(points, "SM + PTC")[-1].q_errors.geometric_mean
    ss = by_algorithm(points, "SSS + PTC")[-1].q_errors.geometric_mean
    els = by_algorithm(points, "ELS")[-1].q_errors.geometric_mean
    assert els <= ss <= m
