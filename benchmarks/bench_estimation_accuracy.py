"""Experiment X-ACC — estimation accuracy across workload shapes.

Chains (one equivalence class), stars (one class per dimension), and
cliques (the chain with all implied predicates written out) are generated
at random, executed for ground truth, and estimated by every algorithm.

Asserted shape:

* on chains, ELS's q-error distribution dominates SM's and SSS's;
* on stars the three PTC'd algorithms coincide (independent classes);
* on cliques, closure makes chain and clique estimates identical.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import (
    PAPER_ALGORITHMS,
    AsciiTable,
    evaluate_workload,
    summarize_errors,
)
from repro.workloads import build_database, chain_workload, clique_workload, star_workload

TRIALS = 12


def collect(workload_factory, trials, seed_base):
    """Per-algorithm q-errors over generated workload instances."""
    errors = {spec.name: [] for spec in PAPER_ALGORITHMS}
    rng = random.Random(seed_base)
    for trial in range(trials):
        workload = workload_factory(rng)
        records = evaluate_workload(workload, seed=seed_base * 100 + trial)
        for record in records:
            errors[record.algorithm].append(record.q_error)
    return errors


@pytest.fixture(scope="module")
def chain_errors():
    errors = collect(
        lambda rng: chain_workload(
            4, rng, min_rows=100, max_rows=1500, local_predicate_probability=0.4
        ),
        TRIALS,
        seed_base=5,
    )
    table = AsciiTable(
        ["Algorithm", "q-error gmean", "median", "p90", "max"],
        title=f"Estimation accuracy on {TRIALS} random 4-table chain queries",
    )
    for name, values in errors.items():
        summary = summarize_errors(values)
        table.add_row(
            name, summary.geometric_mean, summary.median, summary.p90, summary.maximum
        )
    print("\n" + table.render() + "\n")
    return errors


def test_chain_accuracy(benchmark, chain_errors):
    one_trial = lambda: evaluate_workload(
        chain_workload(4, random.Random(0), local_predicate_probability=0.4), seed=0
    )
    benchmark.pedantic(one_trial, rounds=2, iterations=1)

    gmean = {
        name: summarize_errors(values).geometric_mean
        for name, values in chain_errors.items()
    }
    assert gmean["ELS"] <= gmean["SSS + PTC"] * 1.05
    assert gmean["ELS"] <= gmean["SM + PTC"] * 1.05
    assert gmean["SM + PTC"] > gmean["ELS"] * 3  # M is far off on chains
    assert gmean["ELS"] < 4.0  # ELS stays near the truth


def test_star_algorithms_coincide(benchmark):
    """Independent equivalence classes: one eligible predicate per class,
    so M, SS, and LS are the same computation."""

    def run():
        rng = random.Random(21)
        workload = star_workload(3, rng)
        return evaluate_workload(workload, seed=21)

    records = benchmark.pedantic(run, rounds=2, iterations=1)
    ptc_estimates = {
        round(r.estimate, 6) for r in records if r.algorithm != "SM (no PTC)"
    }
    assert len(ptc_estimates) == 1


def test_clique_equals_chain_after_closure(benchmark):
    """'the same QEP is generated for equivalent queries independently of
    how the queries are specified' — estimates agree across phrasings."""
    rng = random.Random(33)
    chain = chain_workload(4, rng, min_rows=100, max_rows=600)
    names = [spec.name for spec in chain.specs]

    import repro.workloads.queries as queries_module
    from repro.sql import Projection, Query, join_predicate

    clique_predicates = [
        join_predicate(a, "c", b, "c")
        for i, a in enumerate(names)
        for b in names[i + 1 :]
    ]
    clique_query = Query.build(names, clique_predicates, Projection(count_star=True))
    database = build_database(chain.specs, seed=77)

    from repro.core import ELS, JoinSizeEstimator

    def estimates():
        chain_est = JoinSizeEstimator(chain.query, database.catalog, ELS)
        clique_est = JoinSizeEstimator(clique_query, database.catalog, ELS)
        return chain_est.estimate(names), clique_est.estimate(names)

    chain_value, clique_value = benchmark(estimates)
    assert chain_value == pytest.approx(clique_value)
