"""Experiment E-JEQ — Section 6's single-table j-equivalence example.

Query: ``(R1.x = R2.y) AND (R1.x = R2.w)``; transitive closure adds
``R2.y = R2.w``.  Statistics: ||R2|| = 1000, d_y = 10, d_w = 50.

Paper numbers: effective cardinality ||R2||' = 1000/50 = **20** and
effective join-column cardinality ceil(10 * (1 - (1 - 1/10)^20)) = **9**.

The bench asserts both, validates them against generated data (count the
rows with y = w and the distinct y-values among them), and shows why the
handling matters: without it, the duplicated join predicates make the
estimate collapse, exactly like Rule M's failure mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import AsciiTable
from repro.core import ELS, SM, JoinSizeEstimator
from repro.workloads import section6_catalog, section6_query, uniform_column

ROWS = 1000
D_Y, D_W = 10, 50


def measure_truth(seed=0):
    """Generate R2 per the containment assumption and measure the
    selection ``y = w`` directly."""
    rng = np.random.default_rng(seed)
    y = uniform_column(ROWS, D_Y, rng)
    w = uniform_column(ROWS, D_W, rng)
    surviving = [yv for yv, wv in zip(y, w) if yv == wv]
    return len(surviving), len(set(surviving))


@pytest.fixture(scope="module")
def report():
    estimator = JoinSizeEstimator(section6_query(), section6_catalog(), ELS)
    effective = estimator.effective_table("R2")
    (group,) = effective.groups
    true_rows, true_distinct = measure_truth()
    table = AsciiTable(
        ["Quantity", "Paper", "Estimated", "True (measured)"],
        title="Section 6: effective stats of R2 under the implied y = w predicate",
    )
    table.add_row("||R2||'", 20, effective.rows, true_rows)
    table.add_row("effective join cardinality", 9, group.distinct, true_distinct)
    print("\n" + table.render() + "\n")
    return effective, group, true_rows, true_distinct


def test_section6_paper_numbers(benchmark, report):
    effective, group, _, _ = report

    def build():
        estimator = JoinSizeEstimator(section6_query(), section6_catalog(), ELS)
        return estimator.effective_table("R2")

    rebuilt = benchmark(build)
    assert rebuilt.rows == 20.0
    assert rebuilt.groups[0].distinct == 9.0
    assert effective.rows == 20.0 and group.distinct == 9.0


def test_section6_against_measured_truth(benchmark, report):
    """The probabilistic argument should land near the generated data's
    actual counts (a data check the paper argues analytically)."""
    _, group, true_rows, true_distinct = report
    measured = benchmark.pedantic(measure_truth, rounds=3, iterations=1)
    assert 20 == pytest.approx(true_rows, abs=15)
    assert group.distinct == pytest.approx(true_distinct, abs=3)


def test_join_estimate_uses_group_cardinality(benchmark):
    """Joining R1 (d_x = 100): LS keeps one predicate with S = 1/max(100, 9);
    the final size is 20 * 100 / 100 = 20."""
    estimator = JoinSizeEstimator(section6_query(), section6_catalog(), ELS)
    estimate = benchmark(estimator.estimate, ["R2", "R1"])
    assert estimate == pytest.approx(20.0)


def test_without_handling_estimate_collapses(benchmark):
    """The standard algorithm multiplies both duplicated join
    selectivities, underestimating by orders of magnitude."""
    standard = JoinSizeEstimator(section6_query(), section6_catalog(), SM)
    els = JoinSizeEstimator(section6_query(), section6_catalog(), ELS)
    standard_estimate = benchmark(standard.estimate, ["R2", "R1"])
    assert standard_estimate < els.estimate(["R2", "R1"]) / 50
