"""Shared benchmark fixtures: the full-scale Section 8 database."""

from __future__ import annotations

import pytest

from repro.workloads import load_smbg_database


@pytest.fixture(scope="session")
def smbg_database_full():
    """The paper's S/M/B/G tables at full scale (157k rows total)."""
    return load_smbg_database(scale=1.0, seed=42)


@pytest.fixture(scope="session")
def smbg_database_small():
    """10% scale for cheap per-iteration timing."""
    return load_smbg_database(scale=0.1, seed=42)
