"""Experiment E1b — Example 1b (Section 2): the basic estimation formulas.

Paper numbers: with ||R1||=100, ||R2||=1000, ||R3||=1000, d_x=10, d_y=100,
d_z=1000,

* S_J1 = 0.01, S_J2 = 0.001, S_J3 = 0.001 (Equation 2),
* ||R2 >< R3|| = 1000 (Equation 1), and
* ||R1 >< R2 >< R3|| = (100 * 1000 * 1000) / (100 * 1000) = 1000
  (Equation 3).

The bench asserts each number exactly and times the preliminary phase
(closure + effective statistics + selectivity computation) and one
incremental estimation walk.
"""

from __future__ import annotations

import pytest

from repro.analysis import AsciiTable
from repro.core import ELS, JoinSizeEstimator
from repro.sql import join_predicate
from repro.workloads import example_1b_catalog, example_1b_query


@pytest.fixture(scope="module")
def report():
    catalog = example_1b_catalog()
    query = example_1b_query()
    estimator = JoinSizeEstimator(query, catalog, ELS)
    table = AsciiTable(
        ["Quantity", "Paper", "Measured"],
        title="Example 1b: selectivities and sizes (paper vs measured)",
    )
    measured = {
        "S_J1": estimator.selectivity_of(join_predicate("R1", "x", "R2", "y")),
        "S_J2": estimator.selectivity_of(join_predicate("R2", "y", "R3", "z")),
        "S_J3": estimator.selectivity_of(join_predicate("R1", "x", "R3", "z")),
        "||R2 >< R3||": estimator.estimate(["R2", "R3"]),
        "||R1 >< R2 >< R3||": estimator.estimate(["R1", "R2", "R3"]),
    }
    paper = {
        "S_J1": 0.01,
        "S_J2": 0.001,
        "S_J3": 0.001,
        "||R2 >< R3||": 1000.0,
        "||R1 >< R2 >< R3||": 1000.0,
    }
    for key in paper:
        table.add_row(key, paper[key], measured[key])
    print("\n" + table.render() + "\n")
    return paper, measured


def test_example_1b_numbers(benchmark, report):
    paper, measured = report
    catalog = example_1b_catalog()
    query = example_1b_query()

    def preliminary_phase_and_walk():
        estimator = JoinSizeEstimator(query, catalog, ELS)
        return estimator.estimate(["R1", "R2", "R3"])

    final = benchmark(preliminary_phase_and_walk)
    assert final == pytest.approx(1000.0)
    for key in paper:
        assert measured[key] == pytest.approx(paper[key]), key


def test_example_1b_closed_form(benchmark, report):
    catalog = example_1b_catalog()
    query = example_1b_query()
    estimator = JoinSizeEstimator(query, catalog, ELS)
    value = benchmark(estimator.closed_form)
    assert value == pytest.approx(1000.0)
