"""Benchmark — columnar vectorized engine vs the row engine on ground truth.

The columnar path exists for one reason: executed ground truths dominate
the cost of every accuracy study, and the instance-optimal / entropy-bound
estimator comparisons on the roadmap need orders of magnitude more of
them.  This bench runs the Section 8 prefix joins on both engines over
the full-scale 157k-row database and asserts

(a) **correctness parity** — identical counts and identical per-operator
    statistics (rows in/out, comparisons, simulated pages), so the
    speedup is measured on provably equivalent work;
(b) **a real speedup** — columnar ground truth is faster than the row
    engine on the biggest prefix (the committed ``BENCH_execution.json``
    records ≥3x overall on the reference machine; here we assert the
    direction conservatively to keep CI timing-noise-proof);
(c) **cache effectiveness** — a warm ground-truth cache answers in
    microseconds without touching either engine.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import AsciiTable, TruthCache, build_reference_plan, prefix_query, true_join_size
from repro.execution import Executor
from repro.workloads import smbg_query


def _operator_stats(metrics):
    return [
        (s.label, s.rows_in, s.rows_out, s.comparisons, s.pages_read)
        for s in metrics.operators
    ]


def _time_count(database, plan, engine):
    started = time.perf_counter()
    result = Executor(database, engine=engine).count(plan)
    return result, time.perf_counter() - started


@pytest.mark.parametrize("num_tables", [2, 3, 4])
def test_engines_agree_on_counts_and_stats(smbg_database_full, num_tables):
    query = smbg_query()
    sub = prefix_query(query, list(query.tables)[:num_tables])
    plan = build_reference_plan(sub, smbg_database_full)
    row = Executor(smbg_database_full, engine="row").count(plan)
    columnar = Executor(smbg_database_full, engine="columnar").count(plan)
    assert row.count == columnar.count > 0
    assert _operator_stats(row.metrics) == _operator_stats(columnar.metrics)


def test_columnar_beats_row_engine_on_full_join(smbg_database_full):
    query = smbg_query()
    plan = build_reference_plan(query, smbg_database_full)
    # Warm one-time caches (storage transpose) outside the timed region.
    Executor(smbg_database_full, engine="columnar").count(plan)
    table = AsciiTable(["Engine", "Count", "Median (s)"], title="S><M><B><G truth")
    timings = {}
    for engine in ("row", "columnar"):
        samples = []
        count = None
        for _ in range(3):
            result, seconds = _time_count(smbg_database_full, plan, engine)
            samples.append(seconds)
            count = result.count
        timings[engine] = sorted(samples)[1]
        table.add_row(engine, count, f"{timings[engine]:.6f}")
    print()
    print(table.render())
    assert timings["columnar"] < timings["row"]


def test_truth_cache_skips_reexecution(smbg_database_full):
    query = smbg_query()
    cache = TruthCache()
    first = true_join_size(query, smbg_database_full, cache=cache)
    started = time.perf_counter()
    second = true_join_size(query, smbg_database_full, cache=cache)
    cached_seconds = time.perf_counter() - started
    assert first == second > 0
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    # A cache hit is two digest lookups and a dict get — far under a
    # millisecond even on slow CI machines.
    assert cached_seconds < 0.1
