"""Experiments E2 and E3 — Examples 2 and 3 (Sections 3.3 and 7).

The join order is (R2 >< R3) >< R1; the true final size is 1000.

* Example 2, Rule M: 1000 * 100 * 0.01 * 0.001 = **1** ("can dramatically
  underestimate").
* Example 3, Rule SS: 1000 * 100 * 0.001 = **100** (still wrong).
* Section 7, Rule LS: 1000 * 100 * 0.01 = **1000** (correct).

The bench asserts all three exactly and times each rule's estimation walk.
"""

from __future__ import annotations

import pytest

from repro.analysis import AsciiTable
from repro.core import ELS, SM, SSS, JoinSizeEstimator
from repro.workloads import example_1b_catalog, example_1b_query

ORDER = ["R2", "R3", "R1"]
EXPECTED = {"Rule M": 1.0, "Rule SS": 100.0, "Rule LS": 1000.0}
CONFIGS = {"Rule M": SM, "Rule SS": SSS, "Rule LS": ELS}


@pytest.fixture(scope="module")
def report():
    catalog = example_1b_catalog()
    query = example_1b_query()
    table = AsciiTable(
        ["Rule", "Estimate for (R2 >< R3) >< R1", "Paper", "True size"],
        title="Examples 2 & 3: the three combination rules on one query",
    )
    measured = {}
    for name, config in CONFIGS.items():
        estimator = JoinSizeEstimator(query, catalog, config)
        measured[name] = estimator.estimate(ORDER)
        table.add_row(name, measured[name], EXPECTED[name], 1000)
    print("\n" + table.render() + "\n")
    return measured


@pytest.mark.parametrize("rule", list(CONFIGS))
def test_rule_estimates(benchmark, report, rule):
    catalog = example_1b_catalog()
    query = example_1b_query()
    estimator = JoinSizeEstimator(query, catalog, CONFIGS[rule])
    estimate = benchmark(estimator.estimate, ORDER)
    assert estimate == pytest.approx(EXPECTED[rule])
    assert report[rule] == pytest.approx(EXPECTED[rule])


def test_underestimation_ordering(benchmark, report):
    """M < SS < LS on this query, with LS exactly right."""
    benchmark(lambda: None)  # ordering check is free; keep bench harness happy
    assert report["Rule M"] < report["Rule SS"] < report["Rule LS"]
    assert report["Rule LS"] == pytest.approx(1000.0)
