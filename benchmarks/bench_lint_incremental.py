"""Benchmark — the incremental lint cache: cold vs warm vs one-file edit.

The full five-layer lint stack (rules + ELS3xx/4xx/5xx/6xx fixpoints)
had become the slowest step in CI and pre-commit.  The content-addressed
cache (:mod:`repro.lint.cache`) must make warm runs nearly free *without
ever changing a verdict*.  This bench measures the three scenarios that
matter operationally and asserts the invariants conservatively (CI
machines are noisy; the committed ``BENCH_lint.json`` records exact
timings from the reference machine, where the warm run is >100x faster
than cold against a required floor of 5x):

* **cold** — empty cache: every file and every component misses;
* **warm** — nothing changed: zero re-analysis, byte-identical output;
* **one-file edit** — exactly one file re-examined, its dependency
  component re-analyzed, everything else replayed from cache.

Run as a script (``python benchmarks/bench_lint_incremental.py``) to
regenerate ``BENCH_lint.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import platform
import shutil
import tempfile
import time

from repro.lint import lint_paths
from repro.lint.cache import LintCache

ROOT = pathlib.Path(__file__).parent.parent

#: Every committed tree, linted with every pass — the CI configuration.
TREES = ("src", "tests", "benchmarks", "examples")
PASSES = {
    "dataflow": True,
    "effects": True,
    "concurrency": True,
    "perf": True,
}

#: The file whose edit the dirty scenario simulates (hot-path module).
DIRTY_FILE = "src/repro/analysis/truth.py"


def _copy_trees(destination: pathlib.Path) -> None:
    for tree in TREES:
        source = ROOT / tree
        if source.is_dir():
            shutil.copytree(
                source,
                destination / tree,
                ignore=shutil.ignore_patterns("__pycache__"),
            )


def _timed_lint(trees, cache):
    started = time.perf_counter()
    diagnostics = lint_paths([str(t) for t in trees], cache=cache, **PASSES)
    return diagnostics, time.perf_counter() - started


def run_scenarios(workdir: pathlib.Path):
    """Cold / warm / one-file-dirty timings over a private tree copy.

    Operates on a copy so the dirty edit never touches the real repo,
    and on a private cache root so developer caches are not polluted.
    """
    _copy_trees(workdir)
    trees = [workdir / tree for tree in TREES if (workdir / tree).is_dir()]
    cache_root = str(workdir / ".repro-lint-cache")

    reference, uncached_s = _timed_lint(trees, None)

    cold_cache = LintCache(cache_root)
    cold, cold_s = _timed_lint(trees, cold_cache)

    warm_cache = LintCache(cache_root)
    warm, warm_s = _timed_lint(trees, warm_cache)

    dirty_path = workdir / DIRTY_FILE
    dirty_path.write_text(
        dirty_path.read_text() + "\n# bench: one-line edit\n"
    )
    dirty_cache = LintCache(cache_root)
    dirty, dirty_s = _timed_lint(trees, dirty_cache)

    return {
        "reference": reference,
        "cold": cold,
        "warm": warm,
        "dirty": dirty,
        "timings": {
            "uncached_s": uncached_s,
            "cold_s": cold_s,
            "warm_s": warm_s,
            "one_file_dirty_s": dirty_s,
        },
        "stats": {
            "cold": cold_cache.stats.to_dict(),
            "warm": warm_cache.stats.to_dict(),
            "one_file_dirty": dirty_cache.stats.to_dict(),
        },
    }


def test_warm_cache_replays_byte_identically():
    with tempfile.TemporaryDirectory() as scratch:
        result = run_scenarios(pathlib.Path(scratch))

    assert result["cold"] == result["reference"]
    assert result["warm"] == result["reference"]
    assert result["stats"]["warm"]["file_misses"] == 0
    assert result["stats"]["warm"]["component_misses"] == 0
    assert result["stats"]["warm"]["corruptions"] == 0

    # One edited file: exactly one file-entry miss, everything else hits.
    assert result["stats"]["one_file_dirty"]["file_misses"] == 1

    # Direction only — the committed BENCH_lint.json records the margin.
    assert result["timings"]["warm_s"] < result["timings"]["cold_s"]


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        result = run_scenarios(pathlib.Path(scratch))
    timings = result["timings"]
    payload = {
        "meta": {
            "tool": "benchmarks/bench_lint_incremental.py",
            "trees": list(TREES),
            "passes": sorted(k for k, v in PASSES.items() if v),
            "dirty_file": DIRTY_FILE,
            "machine": {
                "platform": platform.platform(),
                "python": platform.python_version(),
                "implementation": platform.python_implementation(),
            },
        },
        "timings_s": {key: round(value, 4) for key, value in timings.items()},
        "speedups": {
            "warm_vs_cold": round(timings["cold_s"] / timings["warm_s"], 1),
            "dirty_vs_cold": round(
                timings["cold_s"] / timings["one_file_dirty_s"], 1
            ),
        },
        "cache_stats": result["stats"],
        "finding_count": len(result["reference"]),
    }
    target = ROOT / "BENCH_lint.json"
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload["timings_s"], indent=2))
    print(f"wrote {target}")


if __name__ == "__main__":
    main()
