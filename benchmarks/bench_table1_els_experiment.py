"""Experiment T1 — the paper's Section 8 results table.

Paper setup: SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND
b = g AND s < 100, with ||S||=1000, ||M||=10^4, ||B||=5*10^4, ||G||=10^5,
every join column a key.  Four algorithm setups are compared:

=============  =========  ==================  ==============================  ====
Query          Algorithm  Join Order          Estimated Result Sizes          Time
=============  =========  ==================  ==============================  ====
Orig.          SM         S, M, B, G          (100, 100, 100)                 610
Orig. + PTC    SM         (S/B first, G last) (0.2, 4e-8, 4e-21)              547*
Orig. + PTC    SSS        (S/B first, G last) (0.2, 4e-4, 4e-7)               472
Orig.          ELS        B, G, M, S          (100, 100, 100)                 50
=============  =========  ==================  ==============================  ====

This bench regenerates the table: for each setup it optimizes the query,
prints the chosen join order and the per-join estimated sizes, executes the
chosen plan on the generated data, and reports measured wall seconds, tuple
comparisons, and simulated page I/O.  Absolute 1994 seconds are obviously
not reproducible; the asserted *shape* is (a) the estimate columns match
the paper to rounding, (b) every plan returns the same correct count, and
(c) the no-PTC plan does roughly an order of magnitude more work than the
ELS plan.  See EXPERIMENTS.md for the recorded deviation discussion (the
PTC'd baselines execute nearly as fast as ELS in our substrate because the
implied local predicates dominate once pushed into the scans).
"""

from __future__ import annotations

import pytest

from repro.analysis import AsciiTable
from repro.core import ELS, SM, SSS
from repro.execution import Executor
from repro.optimizer import Optimizer
from repro.workloads import smbg_query

SETUPS = [
    ("Orig.", "SM", SM, False),
    ("Orig. + PTC", "SM", SM, True),
    ("Orig. + PTC", "SSS", SSS, True),
    ("Orig.", "ELS", ELS, True),
]


def run_experiment(database):
    query = smbg_query()
    optimizer = Optimizer(database.catalog)
    executor = Executor(database)
    rows = []
    for query_label, name, config, closure in SETUPS:
        result = optimizer.optimize(query, config, apply_closure=closure)
        run = executor.count(result.plan)
        rows.append(
            {
                "query": query_label,
                "algorithm": name,
                "order": result.join_order,
                "estimates": result.intermediate_sizes,
                "true_count": run.count,
                "wall": run.wall_seconds,
                "comparisons": run.metrics.total_comparisons,
                "pages": run.metrics.total_pages_read,
            }
        )
    return rows


def render(rows):
    table = AsciiTable(
        [
            "Query",
            "Algorithm",
            "Join Order",
            "Estimated Result Sizes",
            "True",
            "Time (s)",
            "Comparisons",
            "Pages",
        ],
        title="Table 1 (Section 8): estimated sizes and execution cost per algorithm",
    )
    for row in rows:
        estimates = "(" + ", ".join(f"{x:.3g}" for x in row["estimates"]) + ")"
        table.add_row(
            row["query"],
            row["algorithm"],
            " >< ".join(row["order"]),
            estimates,
            row["true_count"],
            f"{row['wall']:.3f}",
            row["comparisons"],
            f"{row['pages']:.0f}",
        )
    return table.render()


@pytest.fixture(scope="module")
def experiment_rows(smbg_database_full):
    rows = run_experiment(smbg_database_full)
    print("\n" + render(rows) + "\n")
    return rows


def test_table1_full_experiment(benchmark, experiment_rows, smbg_database_full):
    """Time one full optimize+execute pass of the ELS setup; assert the
    whole table's shape against the paper."""
    query = smbg_query()
    optimizer = Optimizer(smbg_database_full.catalog)
    executor = Executor(smbg_database_full)

    def els_pass():
        result = optimizer.optimize(query, ELS)
        return executor.count(result.plan).count

    count = benchmark.pedantic(els_pass, rounds=3, iterations=1)
    assert count == 99

    by_algorithm = {(r["query"], r["algorithm"]): r for r in experiment_rows}

    # (a) Estimate columns match the paper (their 100 is our 99: the paper
    # rounds sel(s < 100) to 0.1; we compute 99/999).
    sm_no_ptc = by_algorithm[("Orig.", "SM")]
    assert all(e == pytest.approx(99.1, rel=0.01) for e in sm_no_ptc["estimates"])

    sm_ptc = by_algorithm[("Orig. + PTC", "SM")]
    assert sm_ptc["estimates"][-1] < 1e-15  # paper: 4e-21

    sss_ptc = by_algorithm[("Orig. + PTC", "SSS")]
    assert 1e-10 < sss_ptc["estimates"][-1] < 1e-3  # paper: 4e-7

    els = by_algorithm[("Orig.", "ELS")]
    assert all(e == pytest.approx(99.0, rel=0.02) for e in els["estimates"])

    # (b) Every chosen plan computes the same, correct count.
    assert {r["true_count"] for r in experiment_rows} == {99}

    # (c) The no-PTC plan does several times the work — the paper's
    # 610s-vs-50s row.  Simulated page I/O is the asserted metric: it is a
    # pure function of the plans, while the measured wall-time ratio
    # compresses as the executor gets faster (scan caching and bare-value
    # join keys shrink per-row costs but not the I/O the bad plan incurs).
    # Tuple-comparison counts are not used either because sort CPU hides
    # inside the sort call rather than the merge counter.
    assert sm_no_ptc["wall"] > els["wall"]
    assert sm_no_ptc["pages"] > els["pages"] * 2


def test_table1_sm_no_ptc_execution(benchmark, smbg_database_full):
    """Time the baseline plan's execution (the paper's 610-second row)."""
    query = smbg_query()
    optimizer = Optimizer(smbg_database_full.catalog)
    executor = Executor(smbg_database_full)
    result = optimizer.optimize(query, SM, apply_closure=False)

    count = benchmark.pedantic(
        lambda: executor.count(result.plan).count, rounds=3, iterations=1
    )
    assert count == 99


def test_table1_optimize_only(benchmark, smbg_database_full):
    """Time plan optimization alone (estimation + DP enumeration)."""
    query = smbg_query()
    optimizer = Optimizer(smbg_database_full.catalog)
    result = benchmark(lambda: optimizer.optimize(query, ELS))
    assert result.estimated_rows == pytest.approx(99.0, rel=0.02)
