"""Experiment X-TPCH — the algorithms on a recognizable warehouse schema.

The paper's single experiment uses a bespoke 4-table chain.  This bench
replays the comparison on the TPC-H-lite schema (region / nation /
supplier / customer / part / orders / lineitem with uniform foreign keys),
over four canonical query shapes from 3-way to 6-way joins, with executed
ground truth.

Asserted shape: ELS is within 15% of the truth on every query; Rule M
collapses on Q5 (whose region constant interacts with the nation-region
equivalence class); every optimized plan returns the exact count.
"""

from __future__ import annotations

import pytest

from repro.analysis import AsciiTable, q_error, true_join_size
from repro.core import ELS, SM, SSS, JoinSizeEstimator
from repro.execution import Executor
from repro.optimizer import Optimizer
from repro.workloads import (
    load_tpch_lite,
    q3_customer_orders,
    q5_regional,
    q9_parts_suppliers,
    q_full_join,
)

QUERIES = {
    "Q3 (3-way + date)": q3_customer_orders,
    "Q9 (3-way + part filter)": q9_parts_suppliers,
    "Q5 (4-way + region const)": q5_regional,
    "Full (6-way + date)": q_full_join,
}
ALGORITHMS = {"SM": SM, "SSS": SSS, "ELS": ELS}


@pytest.fixture(scope="module")
def results():
    database = load_tpch_lite(scale=0.05, seed=11)
    rows = {}
    table = AsciiTable(
        ["Query", "True size"] + [f"{name} estimate" for name in ALGORITHMS],
        title="TPC-H-lite: estimates vs executed truth (scale 0.05)",
    )
    for label, factory in QUERIES.items():
        query = factory()
        truth = true_join_size(query, database)
        estimates = {}
        for name, config in ALGORITHMS.items():
            estimator = JoinSizeEstimator(query, database.catalog, config)
            estimates[name] = estimator.estimate(list(query.tables))
        rows[label] = (truth, estimates)
        table.add_row(label, truth, *[estimates[n] for n in ALGORITHMS])
    print("\n" + table.render() + "\n")
    return database, rows


def test_els_accurate_on_all_queries(benchmark, results):
    database, rows = results

    def estimate_all():
        return [
            JoinSizeEstimator(factory(), database.catalog, ELS).estimate(
                list(factory().tables)
            )
            for factory in QUERIES.values()
        ]

    benchmark(estimate_all)
    for label, (truth, estimates) in rows.items():
        assert q_error(estimates["ELS"], truth) < 1.15, label


def test_rule_m_collapses_on_q5(benchmark, results):
    benchmark(lambda: None)
    _, rows = results
    truth, estimates = rows["Q5 (4-way + region const)"]
    assert estimates["SM"] < truth * 0.5
    assert estimates["ELS"] == pytest.approx(truth, rel=0.15)


def test_optimized_plans_execute_exactly(benchmark, results):
    database, rows = results
    optimizer = Optimizer(database.catalog)
    executor = Executor(database)

    def optimize_and_run_q3():
        result = optimizer.optimize(q3_customer_orders(), ELS)
        return executor.count(result.plan).count

    count = benchmark.pedantic(optimize_and_run_q3, rounds=3, iterations=1)
    truth, _ = rows["Q3 (3-way + date)"]
    assert count == truth
