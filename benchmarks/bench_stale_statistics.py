"""Experiment X-STALE — estimate quality and plan stability vs stale stats.

The paper's motivation cites [4]: errors in the maintained statistics
propagate into the optimizer's estimates.  This bench perturbs the catalog
by controlled relative errors and measures, per algorithm, the mean q-error
against the unchanged executed truth and the fraction of trials where the
optimizer keeps the plan it chose under fresh statistics.

Asserted shape: at zero staleness every plan is stable; growing staleness
degrades estimates for every algorithm; ELS under perturbation still beats
Rule M under *fresh* statistics on single-class chains — i.e. the
algorithmic error of Rule M dominates realistic statistics error.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import AsciiTable
from repro.analysis.sensitivity import run_staleness_study
from repro.workloads import build_database, chain_workload

ERRORS = (0.0, 0.5, 1.0, 2.0)
WORKLOAD_COUNT = 5


@pytest.fixture(scope="module")
def study():
    rng = random.Random(17)
    workloads = [
        chain_workload(
            4, rng, min_rows=150, max_rows=900, local_predicate_probability=0.3
        )
        for _ in range(WORKLOAD_COUNT)
    ]
    databases = [build_database(w.specs, seed=700 + i) for i, w in enumerate(workloads)]
    points = run_staleness_study(workloads, ERRORS, seed=18, databases=databases)
    table = AsciiTable(
        ["Algorithm", "Stats error", "mean q-error", "plan stability"],
        title=f"Stale statistics over {WORKLOAD_COUNT} random chains",
    )
    for point in points:
        table.add_row(
            point.algorithm, point.error, point.mean_q_error, point.plan_stability
        )
    print("\n" + table.render() + "\n")
    return points


def lookup(points, algorithm, error):
    return next(p for p in points if p.algorithm == algorithm and p.error == error)


def test_staleness_study_runs(benchmark, study):
    rng = random.Random(1)
    workloads = [chain_workload(3, rng, min_rows=100, max_rows=300)]
    benchmark.pedantic(
        run_staleness_study,
        kwargs={"workloads": workloads, "errors": (0.0, 1.0), "seed": 2},
        rounds=2,
        iterations=1,
    )
    # Fresh statistics -> every algorithm keeps its plan.
    for algorithm in ("ELS", "SM + PTC", "SSS + PTC"):
        assert lookup(study, algorithm, 0.0).plan_stability == 1.0


def test_staleness_degrades_estimates(benchmark, study):
    """Monotone degradation is only a sound expectation for an unbiased
    estimator: perturbation noise can coincidentally *cancel* part of a
    systematic underestimate (SSS/M), so the assertion targets ELS, whose
    fresh-statistics error is ~1."""
    benchmark(lambda: None)
    fresh = lookup(study, "ELS", 0.0).mean_q_error
    stale = lookup(study, "ELS", 2.0).mean_q_error
    assert stale > fresh
    assert fresh < 1.5  # near-exact under fresh statistics


def test_algorithmic_error_dominates_stats_error(benchmark, study):
    """ELS with 2x-stale statistics still beats Rule M with perfect
    statistics — choosing the right rule matters more than re-running
    ANALYZE, on single-class chains."""
    benchmark(lambda: None)
    els_stale = lookup(study, "ELS", 2.0).mean_q_error
    m_fresh = lookup(study, "SM + PTC", 0.0).mean_q_error
    assert els_stale < m_fresh
