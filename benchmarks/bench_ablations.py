"""Experiment X-ABL — ablating ELS's components one at a time.

DESIGN.md calls out three separable design choices inside Algorithm ELS:

1. **Rule LS** (Section 7) — replaced by Rule SS or Rule M when ablated;
2. **local-predicate folding into column cardinalities** (Section 5) —
   the "standard algorithm" when ablated;
3. **the urn model** (Section 5) — proportional scaling when ablated;
4. **single-table j-equivalence handling** (Section 6) — plain row
   scaling when ablated.

Each ablation is evaluated on the workload that isolates it, with executed
ground truth, to show every component carries real accuracy weight.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import AsciiTable, AlgorithmSpec, evaluate_workload, summarize_errors
from repro.core import ELS, JoinSizeEstimator, SelectivityRule
from repro.workloads import chain_workload, section6_catalog, section6_query

ABLATIONS = (
    AlgorithmSpec("ELS (full)", ELS),
    AlgorithmSpec("- Rule LS (use SS)", ELS.but(rule=SelectivityRule.SMALLEST)),
    AlgorithmSpec("- Rule LS (use M)", ELS.but(rule=SelectivityRule.MULTIPLICATIVE)),
    AlgorithmSpec("- local folding", ELS.but(fold_local_into_columns=False)),
    AlgorithmSpec("- urn model", ELS.but(use_urn_model=False)),
    AlgorithmSpec("- single-table j-equiv", ELS.but(handle_single_table_jequiv=False)),
)

TRIALS = 10


@pytest.fixture(scope="module")
def ablation_errors():
    errors = {spec.name: [] for spec in ABLATIONS}
    rng = random.Random(3)
    for trial in range(TRIALS):
        workload = chain_workload(
            4, rng, min_rows=150, max_rows=1200, local_predicate_probability=0.6
        )
        records = evaluate_workload(workload, ABLATIONS, seed=400 + trial)
        for record in records:
            errors[record.algorithm].append(record.q_error)
    table = AsciiTable(
        ["Configuration", "q-error gmean", "p90", "max"],
        title=f"ELS ablations on {TRIALS} random chains with local predicates",
    )
    for name, values in errors.items():
        summary = summarize_errors(values)
        table.add_row(name, summary.geometric_mean, summary.p90, summary.maximum)
    print("\n" + table.render() + "\n")
    return errors


def test_rule_ls_ablation_hurts(benchmark, ablation_errors):
    benchmark(lambda: None)
    full = summarize_errors(ablation_errors["ELS (full)"]).geometric_mean
    without_ls_m = summarize_errors(ablation_errors["- Rule LS (use M)"]).geometric_mean
    assert without_ls_m > full * 2

    without_ls_ss = summarize_errors(
        ablation_errors["- Rule LS (use SS)"]
    ).geometric_mean
    assert without_ls_ss >= full * 0.99


def test_full_els_is_best_overall(benchmark, ablation_errors):
    benchmark(lambda: None)
    gmeans = {
        name: summarize_errors(values).geometric_mean
        for name, values in ablation_errors.items()
    }
    best = min(gmeans.values())
    assert gmeans["ELS (full)"] <= best * 1.10


def test_section6_ablation_changes_join_selectivities(benchmark):
    """Rule LS already collapses the duplicated predicates, so on the
    Section 6 query itself the ablation surfaces through the *effective
    join cardinality* (urn-reduced 9 versus the raw 50 of column w): with
    a joining column cardinality between those two, the selectivities — and
    hence the estimates — diverge."""
    from repro.catalog import Catalog
    from repro.sql import Projection, Query, join_predicate

    catalog = Catalog.from_stats(
        {"R1": (100, {"x": 15}), "R2": (1000, {"y": 10, "w": 50})}
    )
    query = Query.build(
        ["R1", "R2"],
        [join_predicate("R1", "x", "R2", "y"), join_predicate("R1", "x", "R2", "w")],
        Projection(count_star=True),
    )
    full = JoinSizeEstimator(query, catalog, ELS)
    ablated = JoinSizeEstimator(
        query, catalog, ELS.but(handle_single_table_jequiv=False)
    )
    full_estimate = benchmark(full.estimate, ["R2", "R1"])
    ablated_estimate = ablated.estimate(["R2", "R1"])
    # Full: group d = 9 -> S = 1/max(15, 9) = 1/15; rows 20 * 100 / 15.
    assert full_estimate == pytest.approx(20 * 100 / 15, rel=1e-6)
    # Ablated: the w-side predicate keeps the raw d_w = 50, so its
    # selectivity drops to 1/50 (Rule LS happens to rescue this particular
    # estimate via the y-side predicate; the selectivity itself is wrong
    # and surfaces whenever w is the only eligible link).
    assert full.selectivity_of(
        join_predicate("R1", "x", "R2", "w")
    ) == pytest.approx(1 / 15)
    assert ablated.selectivity_of(
        join_predicate("R1", "x", "R2", "w")
    ) == pytest.approx(1 / 50)
    assert ablated_estimate <= full_estimate


def test_urn_ablation_on_section5_shape(benchmark):
    """Disabling the urn model halves the surviving distinct estimate of a
    50% selection, which then doubles the join selectivity error."""
    from repro.catalog import Catalog
    from repro.sql import Op, Projection, Query, join_predicate, local_predicate

    catalog = Catalog.from_stats(
        {"R": (100000, {"y": 100000, "x": 10000}), "S": (10000, {"x": 10000})}
    )
    query = Query.build(
        ["R", "S"],
        [
            join_predicate("R", "x", "S", "x"),
            local_predicate("R", "y", Op.LE, 50000),
        ],
        Projection(count_star=True),
    )
    with_urn = JoinSizeEstimator(query, catalog, ELS, apply_closure=False)
    without = JoinSizeEstimator(
        query, catalog, ELS.but(use_urn_model=False), apply_closure=False
    )
    a = benchmark(with_urn.estimate, ["R", "S"])
    b = without.estimate(["R", "S"])
    # True size: 50000 selected rows, each matching one S row = 50000.
    assert a == pytest.approx(50000, rel=0.01)
    assert b == pytest.approx(50000, rel=0.01)  # same here (d_S larger)...
    # ...but the *effective cardinality* difference shows where R's side
    # is the larger one:
    assert with_urn.effective_table("R").distinct("x") == pytest.approx(9933, rel=0.01)
    assert without.effective_table("R").distinct("x") == pytest.approx(5000, rel=0.01)
