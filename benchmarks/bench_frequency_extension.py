"""Experiment X-FREQ — the Section 9 future-work extension, implemented.

"Relaxing the [uniformity] assumption in the case of join predicates would
enable query optimizers to account for important data distributions such
as the Zipfian distribution."

This bench quantifies the payoff of doing exactly that: ELS with
MCV-frequency-based join selectivities (``use_frequency_stats=True``)
versus plain ELS on Zipf-skewed chains, with executed ground truth.
Asserted shape: the extension is inert on uniform data, and improves the
geometric-mean q-error by at least an order of magnitude under skew.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import AlgorithmSpec, AsciiTable, evaluate_workload, summarize_errors
from repro.core import ELS
from repro.workloads import build_database, chain_workload

ALGORITHMS = (
    AlgorithmSpec("ELS (Equation 2)", ELS),
    AlgorithmSpec("ELS + frequency stats", ELS.but(use_frequency_stats=True)),
)
TRIALS = 8
MCV_K = 25


def errors_at_skew(skew, trials=TRIALS, seed_base=500):
    errors = {spec.name: [] for spec in ALGORITHMS}
    rng = random.Random(seed_base)
    for trial in range(trials):
        workload = chain_workload(
            3,
            rng,
            min_rows=300,
            max_rows=2000,
            skew=skew if skew > 0 else None,
        )
        database = build_database(workload.specs, seed=seed_base + trial, mcv_k=MCV_K)
        for record in evaluate_workload(workload, ALGORITHMS, database=database):
            errors[record.algorithm].append(record.q_error)
    return {
        name: summarize_errors(values).geometric_mean
        for name, values in errors.items()
    }


@pytest.fixture(scope="module")
def sweep():
    results = {}
    table = AsciiTable(
        ["Skew (theta)"] + [spec.name for spec in ALGORITHMS],
        title=f"q-error (gmean, {TRIALS} chains/row) with and without frequency statistics",
    )
    for skew in (0.0, 0.8, 1.2):
        results[skew] = errors_at_skew(skew)
        table.add_row(skew, *[results[skew][spec.name] for spec in ALGORITHMS])
    print("\n" + table.render() + "\n")
    return results


def test_extension_inert_on_uniform_data(benchmark, sweep):
    benchmark.pedantic(
        errors_at_skew, kwargs={"skew": 0.0, "trials": 2}, rounds=1, iterations=1
    )
    uniform = sweep[0.0]
    assert uniform["ELS + frequency stats"] == pytest.approx(
        uniform["ELS (Equation 2)"], rel=0.25
    )
    assert uniform["ELS (Equation 2)"] < 2.0


def test_extension_wins_under_skew(benchmark, sweep):
    benchmark(lambda: None)
    for skew in (0.8, 1.2):
        plain = sweep[skew]["ELS (Equation 2)"]
        extended = sweep[skew]["ELS + frequency stats"]
        assert extended < plain / 10
        assert extended < 20.0
