"""Experiment X-COST — does the cost model rank plans like reality does?

The reproduction's substitution argument (DESIGN.md) is that absolute cost
calibration does not matter as long as *relative* plan ranking is right:
feed the model correct cardinalities and it prefers genuinely cheaper
plans.  This bench closes that loop empirically on a heterogeneous 4-table
chain (table sizes spanning 200–20000 rows, no local predicates, so join
order genuinely changes the work): every one of the 24 join orders is
costed by the model and executed, and the Spearman rank correlation
between modeled cost and measured execution (simulated page I/O and wall
seconds) is reported.

Asserted shape: rank correlation > 0.8 against measured pages and > 0.5
against wall time; the modeled-best order lands in the measured-cheap half;
and every order returns the same true count.
"""

from __future__ import annotations

import itertools

import pytest

from repro.analysis import AsciiTable, rank_correlation
from repro.core import ELS, JoinSizeEstimator
from repro.execution import Executor
from repro.optimizer import CostModel, JoinMethod, cost_of_order
from repro.optimizer.enumerate import _build_scans
from repro.sql import Projection, Query, join_predicate
from repro.workloads import TableSpec, build_database

METHODS = (JoinMethod.NESTED_LOOPS, JoinMethod.SORT_MERGE)

SPECS = [
    TableSpec.uniform("A", 200, {"c": 40}),
    TableSpec.uniform("B", 5000, {"c": 1000}),
    TableSpec.uniform("C", 20000, {"c": 4000}),
    TableSpec.uniform("D", 1000, {"c": 100}),
]
PREDICATES = [
    join_predicate("A", "c", "B", "c"),
    join_predicate("B", "c", "C", "c"),
    join_predicate("C", "c", "D", "c"),
]


@pytest.fixture(scope="module")
def calibration():
    query = Query.build(
        [spec.name for spec in SPECS], PREDICATES, Projection(count_star=True)
    )
    database = build_database(SPECS, seed=1)
    estimator = JoinSizeEstimator(query, database.catalog, ELS)
    model = CostModel()
    widths = {t: 4 for t in query.tables}
    rows = {t: database.catalog.stats(t).row_count for t in query.tables}
    scans = _build_scans(estimator, model, widths, rows)
    executor = Executor(database)

    records = []
    for order in itertools.permutations(query.tables):
        candidate = cost_of_order(list(order), scans, estimator, model, METHODS)
        assert candidate is not None
        run = executor.count(candidate.plan)
        records.append(
            {
                "order": order,
                "modeled": candidate.cost,
                "pages": run.metrics.total_pages_read,
                "wall": run.wall_seconds,
                "count": run.count,
            }
        )

    table = AsciiTable(
        ["Join order", "Modeled cost", "Measured pages", "Wall (ms)"],
        title="Cost model vs reality across all 24 join orders (heterogeneous chain)",
    )
    for record in sorted(records, key=lambda r: r["modeled"])[:8]:
        table.add_row(
            " >< ".join(record["order"]),
            record["modeled"],
            record["pages"],
            record["wall"] * 1000,
        )
    print("\n" + table.render() + "\n(8 cheapest-by-model of 24 shown)\n")
    return records


def test_all_orders_return_same_count(benchmark, calibration):
    benchmark(lambda: None)
    assert len({r["count"] for r in calibration}) == 1


def test_rank_correlation_with_measurements(benchmark, calibration):
    benchmark(lambda: None)
    modeled = [r["modeled"] for r in calibration]
    pages_correlation = rank_correlation(modeled, [r["pages"] for r in calibration])
    wall_correlation = rank_correlation(modeled, [r["wall"] for r in calibration])
    print(
        f"Spearman(model, pages) = {pages_correlation:.3f}; "
        f"Spearman(model, wall) = {wall_correlation:.3f}"
    )
    assert pages_correlation > 0.8
    assert wall_correlation > 0.5


def test_modeled_best_is_measured_cheap(benchmark, calibration):
    benchmark(lambda: None)
    by_model = sorted(calibration, key=lambda r: r["modeled"])
    by_pages = sorted(calibration, key=lambda r: r["pages"])
    cheap_half = {tuple(r["order"]) for r in by_pages[: len(by_pages) // 2]}
    assert tuple(by_model[0]["order"]) in cheap_half
